// Command rtbench runs the paper's experiments and prints their tables.
//
// Usage:
//
//	rtbench -exp fig1  -n 64  -seed 1 -k 2,3   # comparison table (E1)
//	rtbench -exp fig2  -n 36  -seed 1          # block distribution (E2, Fig. 2)
//	rtbench -exp fig5  -n 64  -seed 1          # prefix-matching dictionary walk (E5)
//	rtbench -exp fig10 -n 64  -seed 1          # center-relayed tree route (E7)
//	rtbench -exp space -seed 1                 # table-size sweep (E9)
//	rtbench -exp stretch -n 48 -seed 1         # per-scheme stretch distributions (E3/E4/E6)
//	rtbench -exp profile -n 64 -seed 1         # stretch by roundtrip-distance quantile
//	rtbench -exp lower -n 25 -seed 1           # Theorem 15 reduction (E8)
//	rtbench -exp ablation -n 36 -seed 1        # cover-variant ablation (E10)
//	rtbench -exp traffic -n 256 -packets 200000 -workload zipf -workers 4
//	                                           # concurrent serving engine (E12/S3)
//	rtbench -exp cluster -n 256 -shards 8 -placement rtz -packets 200000
//	                                           # sharded cluster serving (E15/S6)
//	rtbench -exp bench -json -out BENCH_PR6.json
//	                                           # canonical perf suite -> trajectory artifact (E13)
//	rtbench -exp churn -n 1024 -epochs 8 -rate 2 -packets 80000
//	                                           # dynamic topology: seeded churn, repair, certification (E17)
//	rtbench -exp churncluster -n 256 -shards 8 -epochs 4 -events 4 -packets 40000
//	                                           # churn through the shard fabric, certified under fire (E19)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"rtroute"
	"rtroute/internal/benchsuite"
)

func main() {
	var (
		exp    = flag.String("exp", "fig1", "experiment: fig1|fig2|fig5|fig10|space|stretch|profile|lower|ablation|traffic|cluster|bench|churn|churncluster")
		n      = flag.Int("n", 64, "number of nodes")
		seed   = flag.Int64("seed", 1, "random seed")
		ks     = flag.String("k", "2,3", "comma-separated tradeoff parameters")
		metric = flag.String("metric", "dense", "distance oracle: dense|lazy")
		cache  = flag.Int("lazy-cache", 0, "lazy oracle row-cache budget (0 = default)")
	)
	flag.BoolVar(&benchJSON, "json", false, "bench: also write the report as JSON")
	flag.StringVar(&benchOut, "out", "BENCH_PR7.json", "bench: JSON output path (with -json)")
	flag.IntVar(&trafficWorkers, "workers", 0, "traffic: serving goroutines (0 = GOMAXPROCS)")
	flag.StringVar(&trafficWorkload, "workload", "zipf", "traffic: pair distribution: uniform|zipf|hotspot|rpc")
	flag.Float64Var(&trafficZipf, "zipf", 0.9, "traffic: zipf skew theta in [0,1)")
	flag.Int64Var(&trafficPackets, "packets", 200000, "traffic: roundtrips to serve")
	flag.StringVar(&trafficScheme, "scheme", "stretch6", "traffic: plane to serve: stretch6|exstretch|poly|rtz|hop")
	flag.IntVar(&clusterShards, "shards", 8, "cluster: number of serving shards")
	flag.StringVar(&clusterPlacement, "placement", "contiguous", "cluster: node partition: contiguous|hash|rtz")
	flag.IntVar(&clusterInFlight, "inflight", 0, "cluster: concurrent roundtrip window (0 = default)")
	flag.IntVar(&churnEpochs, "epochs", 8, "churn: serve->churn->repair rounds (churncluster: event batches)")
	flag.IntVar(&churnEvents, "events", 4, "churncluster: topology events per batch")
	flag.Float64Var(&churnRate, "rate", 2, "churn: topology events per 10k served packets")
	flag.Float64Var(&churnStale, "stale-frac", 0.05, "churn: pre-repair serving window as a fraction of the epoch quota")
	flag.BoolVar(&churnCertify, "certify", true, "churn: certify the repaired plane bit-identical to a from-scratch build every epoch")
	flag.BoolVar(&servingTiming, "timing", false, "traffic/cluster: attach a telemetry sink and print the measured per-stage cost table")
	flag.StringVar(&servingHTTP, "http", "", "traffic/cluster: serve live /metrics and /debug/pprof on this address during the run")
	flag.Parse()
	metricKind = rtroute.MetricKind(*metric)
	lazyCacheRows = *cache
	if metricKind != rtroute.MetricDense && metricKind != rtroute.MetricLazy {
		fmt.Fprintf(os.Stderr, "rtbench: unknown -metric %q (want %q or %q)\n",
			*metric, rtroute.MetricDense, rtroute.MetricLazy)
		os.Exit(2)
	}

	if err := run(*exp, *n, *seed, parseKs(*ks)); err != nil {
		fmt.Fprintln(os.Stderr, "rtbench:", err)
		os.Exit(1)
	}
}

// metricKind selects the distance oracle for every experiment that
// builds a System (-metric flag); lazyCacheRows bounds the lazy cache.
var (
	metricKind    = rtroute.MetricDense
	lazyCacheRows int

	// -exp traffic knobs.
	trafficWorkers  int
	trafficWorkload string
	trafficZipf     float64
	trafficPackets  int64
	trafficScheme   string

	// -exp cluster knobs.
	clusterShards    int
	clusterPlacement string
	clusterInFlight  int

	// -exp churn / churncluster knobs.
	churnEpochs  int
	churnEvents  int
	churnRate    float64
	churnStale   float64
	churnCertify bool

	// serving telemetry knobs (-exp traffic and -exp cluster).
	servingTiming bool
	servingHTTP   string

	// -exp bench knobs.
	benchJSON bool
	benchOut  string
)

func newSystem(g *rtroute.Graph, naming *rtroute.Naming) (*rtroute.System, error) {
	return rtroute.NewSystemWith(g, naming, rtroute.SystemConfig{Metric: metricKind, LazyCacheRows: lazyCacheRows})
}

func parseKs(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if k, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && k >= 2 {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = []int{2}
	}
	return out
}

func run(exp string, n int, seed int64, ks []int) error {
	switch exp {
	case "fig1":
		return runFig1(n, seed, ks)
	case "fig2":
		return runFig2(n, seed)
	case "fig5":
		return runFig5(n, seed)
	case "fig10":
		return runFig10(n, seed)
	case "space":
		return runSpace(seed)
	case "stretch":
		return runStretch(n, seed, ks)
	case "profile":
		return runProfile(n, seed)
	case "lower":
		return runLower(n, seed)
	case "ablation":
		return runAblation(n, seed)
	case "traffic":
		return runTraffic(n, seed)
	case "cluster":
		return runCluster(n, seed)
	case "bench":
		return runBench()
	case "churn":
		return runChurnExp(n, seed)
	case "churncluster":
		return runChurnClusterExp(n, seed)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// runBench executes the canonical perf suite (E13) and optionally writes
// the BENCH_PR<k>.json trajectory artifact.
func runBench() error {
	fmt.Println("# E13 — canonical perf suite (Dijkstra, EdgeByPort, MetricBuild, TrafficThroughput)")
	fmt.Println("# each row runs ~1s of iterations; see DESIGN.md \"Hot-path engineering\"")
	fmt.Println()
	rep := benchsuite.Run()
	fmt.Print(rep.Format())
	if !benchJSON {
		return nil
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", benchOut)
	return nil
}

// buildServingScheme builds the -scheme plane for the serving
// experiments through the unified Build entry point.
func buildServingScheme(sys *rtroute.System, seed int64) (rtroute.Scheme, error) {
	var kind rtroute.SchemeKind
	switch trafficScheme {
	case "stretch6":
		kind = rtroute.StretchSix
	case "exstretch":
		kind = rtroute.ExStretch
	case "poly":
		kind = rtroute.Polynomial
	case "rtz":
		kind = rtroute.RTZStretch3
	case "hop":
		kind = rtroute.HopSubstrate
	default:
		return nil, fmt.Errorf("unknown -scheme %q (want stretch6|exstretch|poly|rtz|hop)", trafficScheme)
	}
	return sys.Build(kind, rtroute.WithSeed(seed), rtroute.WithK(2))
}

// attachSink builds the serving experiments' telemetry sink when
// -timing or -http asks for one (nil otherwise — the plane off switch)
// and starts the live HTTP surface when -http is set. The returned
// stop func shuts the HTTP server down.
func attachSink(shape rtroute.TelemetryConfig) (*rtroute.TelemetrySink, func(), error) {
	if !servingTiming && servingHTTP == "" {
		return nil, func() {}, nil
	}
	sink := rtroute.NewTelemetrySink(shape)
	if servingHTTP == "" {
		return sink, func() {}, nil
	}
	srv, bound, err := rtroute.ServeTelemetry(servingHTTP, sink, nil)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("telemetry on http://%s/metrics\n\n", bound)
	return sink, func() { srv.Close() }, nil
}

// printTiming renders the machine-measured per-stage cost table that
// replaces the DESIGN "Serving numbers" hand arithmetic: sampled stage
// laps scaled up by batch counts, compared against measured wall ns/rt.
func printTiming(sink *rtroute.TelemetrySink, packets int64, elapsedNs int64) {
	if sink == nil || !servingTiming {
		return
	}
	rows := sink.Snapshot().StageTable(packets)
	wall := float64(elapsedNs) / float64(packets)
	fmt.Printf("\nmeasured stage timing (sampled batches, scaled to per-roundtrip)\n%s",
		rtroute.FormatStageTable(rows, wall))
}

func runTraffic(n int, seed int64) error {
	fmt.Printf("# E12/S3 — concurrent routed-traffic serving (n=%d, seed=%d, scheme=%s, workload=%s, metric=%s)\n\n",
		n, seed, trafficScheme, trafficWorkload, metricKind)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 8, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	plane, err := buildServingScheme(sys, seed)
	if err != nil {
		return err
	}
	cfg := rtroute.TrafficConfig{
		Workers: trafficWorkers,
		Packets: trafficPackets,
		Seed:    seed,
		Workload: rtroute.TrafficWorkload{
			Kind:      rtroute.WorkloadKind(trafficWorkload),
			ZipfTheta: trafficZipf,
		},
	}
	sink, stop, err := attachSink(cfg.SinkShape())
	if err != nil {
		return err
	}
	defer stop()
	cfg.Sink = sink
	res, err := sys.ServeTraffic(plane, cfg)
	if err != nil {
		return err
	}
	fmt.Print(rtroute.FormatTraffic(res))
	printTiming(sink, res.Packets, res.Elapsed.Nanoseconds())
	fmt.Println("\nstretch is measured over true roundtrip distances; skewed workloads reuse hot oracle rows")
	return nil
}

// runCluster is the E15 sharded-serving experiment: the same workloads
// as -exp traffic, served by an in-process shard cluster that
// wire-encodes every boundary-crossing packet, reported with the
// cross-shard hop accounting the placement policies compete on.
func runCluster(n int, seed int64) error {
	fmt.Printf("# E15/S6 — sharded cluster serving (n=%d, seed=%d, scheme=%s, workload=%s, shards=%d, placement=%s)\n\n",
		n, seed, trafficScheme, trafficWorkload, clusterShards, clusterPlacement)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 8, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	sch, err := buildServingScheme(sys, seed)
	if err != nil {
		return err
	}
	cfg := rtroute.ClusterConfig{
		Shards:    clusterShards,
		Workers:   trafficWorkers,
		Placement: rtroute.PlacementPolicy(clusterPlacement),
		Packets:   trafficPackets,
		Seed:      seed,
		Workload: rtroute.TrafficWorkload{
			Kind:      rtroute.WorkloadKind(trafficWorkload),
			ZipfTheta: trafficZipf,
		},
		SampleEvery: 101,
		InFlight:    clusterInFlight,
	}
	sink, stop, err := attachSink(cfg.SinkShape())
	if err != nil {
		return err
	}
	defer stop()
	cfg.Sink = sink
	res, err := sys.ServeCluster(sch, cfg)
	if err != nil {
		return err
	}
	fmt.Print(rtroute.FormatCluster(res))
	printTiming(sink, res.Packets, res.Elapsed.Nanoseconds())
	fmt.Println("\npackets cross shard boundaries as wire-encoded frames; see DESIGN.md \"Cluster serving\"")
	return nil
}

func runProfile(n int, seed int64) error {
	fmt.Printf("# stretch profile by roundtrip distance (n=%d, seed=%d)\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 8, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	for _, b := range []struct {
		name  string
		build func() (rtroute.Scheme, error)
	}{
		{"stretch6", func() (rtroute.Scheme, error) { return sys.BuildStretchSix(seed) }},
		{"polystretch k=2", func() (rtroute.Scheme, error) { return sys.BuildPolynomial(2) }},
	} {
		sch, err := b.build()
		if err != nil {
			return err
		}
		buckets, err := rtroute.ProfileScheme(sys, sch, 5000, 5, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n%s\n", b.name, rtroute.FormatProfile(buckets))
	}
	fmt.Println("nearby destinations pay relatively more: dictionary detours dominate small r(s,t)")
	return nil
}

func runFig5(n int, seed int64) error {
	fmt.Printf("# Fig. 5 — prefix-matching dictionary walk (ExStretch, n=%d, seed=%d)\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 6, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	ex, err := sys.BuildExStretch(4, seed)
	if err != nil {
		return err
	}
	printed := 0
	for src := 0; src < n && printed < 3; src++ {
		dst := (src*37 + n/2) % n
		if src == dst {
			continue
		}
		srcName := sys.Naming.Name(int32(src))
		dstName := sys.Naming.Name(int32(dst))
		steps, err := ex.PrefixTrace(srcName, dstName)
		if err != nil {
			return err
		}
		if len(steps) < 3 {
			continue // walk too short to illustrate; try another pair
		}
		printed++
		fmt.Printf("destination name %d = digits %v (base %d)\n", dstName, ex.Universe().Digits(dstName), ex.Universe().Q)
		for i, st := range steps {
			fmt.Printf("  v_%d: node %3d  name %4d  digits %v  holds block matching %d digit(s) of target\n",
				i, st.Node, st.Name, st.Digits, st.Matched)
		}
		fmt.Println()
	}
	fmt.Println("each waypoint's blocks match a strictly longer prefix — the Fig. 5 schematic")
	return nil
}

func runFig10(n int, seed int64) error {
	fmt.Printf("# Fig. 10 — center-relayed route inside a home double-tree (PolynomialStretch, n=%d, seed=%d)\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 6, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	poly, err := sys.BuildPolynomial(2)
	if err != nil {
		return err
	}
	src := sys.Naming.Name(0)
	dst := sys.Naming.Name(int32(n / 2))
	tr, err := poly.Roundtrip(src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("roundtrip name %d -> %d -> %d\n", src, dst, src)
	fmt.Printf("  out path  (topological ids): %v\n", tr.Out.Path)
	fmt.Printf("  back path (topological ids): %v\n", tr.Back.Path)
	for lvl := 0; lvl < poly.Levels(); lvl++ {
		root, err := poly.HomeTreeRoot(src, lvl)
		if err != nil {
			return err
		}
		fmt.Printf("  level %d home-tree center (name): %d\n", lvl, root)
	}
	fmt.Println("\nthe packet repeatedly relays through its tree's center, as in Fig. 10")
	return nil
}

func runFig1(n int, seed int64, ks []int) error {
	fmt.Printf("# E1 / Fig. 1 — scheme comparison on a random SC digraph (n=%d, seed=%d)\n\n", n, seed)
	rows, err := rtroute.Fig1(rtroute.Fig1Config{
		N: n, Seed: seed, Ks: ks,
		Lazy: metricKind == rtroute.MetricLazy, LazyCacheRows: lazyCacheRows,
	})
	if err != nil {
		return err
	}
	fmt.Print(rtroute.FormatFig1(rows))
	fmt.Println("\nstretch columns are measured over sampled ordered pairs; bounds are the paper's worst cases")
	return nil
}

func runFig2(n int, seed int64) error {
	fmt.Printf("# E2 / Fig. 2 — block distribution (Lemma 1) on n=%d, seed=%d\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 3*n, 1, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	s6, err := sys.BuildStretchSix(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-20s\n", "node", "neighborhood size")
	for v := 0; v < n && v < 12; v++ {
		fmt.Printf("%-8d %-20d\n", v, s6.NeighborhoodEntries(rtroute.NodeID(v)))
	}
	fmt.Printf("...\nmax table words: %d  avg: %.1f\n", s6.MaxTableWords(), s6.AvgTableWords())
	fmt.Println("every neighborhood covers every block type (verified at construction)")
	return nil
}

func runSpace(seed int64) error {
	fmt.Printf("# E9 — table size vs n for the stretch-6 scheme (seed=%d)\n\n", seed)
	pts, err := rtroute.SpaceSweep([]int{64, 128, 256, 512}, seed)
	if err != nil {
		return err
	}
	fmt.Print(rtroute.FormatSpaceSweep(pts))
	fmt.Println("\navg/sqrt(n) should be roughly flat times polylog growth")
	return nil
}

func runStretch(n int, seed int64, ks []int) error {
	fmt.Printf("# E3/E4/E6 — stretch distributions (n=%d, seed=%d)\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 8, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	type build struct {
		name  string
		bound string
		sch   rtroute.Scheme
	}
	var builds []build
	s6, err := sys.BuildStretchSix(seed)
	if err != nil {
		return err
	}
	builds = append(builds, build{"stretch6", "6", s6})
	for _, k := range ks {
		ex, err := sys.BuildExStretch(k, seed)
		if err != nil {
			return err
		}
		builds = append(builds, build{fmt.Sprintf("exstretch k=%d", k), fmt.Sprintf("(2^%d-1)*hop", k), ex})
		poly, err := sys.BuildPolynomial(k)
		if err != nil {
			return err
		}
		builds = append(builds, build{fmt.Sprintf("polystretch k=%d", k), fmt.Sprintf("%d", 8*k*k+4*k-4), poly})
	}
	fmt.Printf("%-18s %-14s %8s %8s %8s %10s\n", "scheme", "bound", "maxS", "meanS", "p99S", "maxHdrW")
	for _, b := range builds {
		stats, err := rtroute.MeasureScheme(sys, b.sch, 4000, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		fmt.Printf("%-18s %-14s %8.3f %8.3f %8.3f %10d\n",
			b.name, b.bound, stats.Max, stats.Mean, stats.P99, stats.MaxHeaderWords)
	}
	return nil
}

func runLower(n int, seed int64) error {
	fmt.Printf("# E8 / Theorem 15 — reduction on a bidirected graph (n=%d, seed=%d)\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.Bidirect(rtroute.RandomSC(n, 3*n, 4, rng))
	g.AssignPorts(rng.Intn)
	sys, err := newSystem(g, rtroute.RandomNaming(g.N(), rng))
	if err != nil {
		return err
	}
	s6, err := sys.BuildStretchSix(seed)
	if err != nil {
		return err
	}
	reports, err := rtroute.AnalyzeLowerBound(sys, s6)
	if err != nil {
		return err
	}
	sum := rtroute.SummarizeLowerBound(reports)
	fmt.Printf("pairs analyzed:          %d\n", sum.Pairs)
	fmt.Printf("max roundtrip stretch:   %.3f (scheme bound 6)\n", sum.MaxRoundtripStretch)
	fmt.Printf("max induced 1-way stretch: %.3f (s1 <= 2*s2 - 1)\n", sum.MaxOneWayStretch)
	fmt.Printf("pairs with roundtrip stretch < 2: %d / %d\n", sum.PairsBelow2, sum.Pairs)
	fmt.Println("\nTheorem 15: with o(n) tables, no TINN roundtrip scheme can keep ALL pairs below 2")
	return nil
}

func runAblation(n int, seed int64) error {
	fmt.Printf("# E10 / §4.4 — cover-variant ablation for polystretch (n=%d, seed=%d)\n\n", n, seed)
	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 4*n, 6, rng)
	sys, err := newSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8s %8s %10s %10s\n", "variant", "maxS", "meanS", "maxTblW", "avgTblW")
	for _, v := range []struct {
		name string
		cv   rtroute.CoverVariant
		base float64
	}{
		{"awerbuch-peleg base=2", rtroute.CoverAwerbuchPeleg, 2},
		{"ball-growing base=2", rtroute.CoverBallGrowing, 2},
		{"awerbuch-peleg base=1.5", rtroute.CoverAwerbuchPeleg, 1.5},
	} {
		poly, err := sys.BuildPolynomialVariant(2, v.base, v.cv)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		stats, err := rtroute.MeasureScheme(sys, poly, 3000, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		fmt.Printf("%-28s %8.3f %8.3f %10d %10.1f\n",
			v.name, stats.Max, stats.Mean, poly.MaxTableWords(), poly.AvgTableWords())
	}
	fmt.Println("\n§4.4: the AP cover keeps whole neighborhoods in one home tree; ball-growing trades radius for overlap")

	fmt.Printf("\n# return-trip policy ablations (§2.2 and §3.5 remarks)\n\n")
	fmt.Printf("%-28s %8s %8s %10s %10s %10s\n", "scheme variant", "maxS", "meanS", "maxTblW", "avgTblW", "maxHdrW")
	// Sparse block assignments (low boost) make the dictionary path
	// actually fire, so the return-policy variants can diverge.
	sparse := rtroute.BlockOptions{Boost: 1.2}
	variants := []struct {
		name  string
		build func() (rtroute.Scheme, error)
	}{
		{"stretch6", func() (rtroute.Scheme, error) {
			return sys.BuildStretchSixWith(seed, rtroute.Stretch6Options{Blocks: sparse})
		}},
		{"stretch6 via-source", func() (rtroute.Scheme, error) {
			return sys.BuildStretchSixWith(seed, rtroute.Stretch6Options{Blocks: sparse, ViaSource: true})
		}},
		{"exstretch k=2", func() (rtroute.Scheme, error) {
			return sys.BuildExStretchWith(seed, rtroute.ExStretchOptions{K: 2, Blocks: sparse})
		}},
		{"exstretch k=2 direct-return", func() (rtroute.Scheme, error) {
			return sys.BuildExStretchWith(seed, rtroute.ExStretchOptions{K: 2, Blocks: sparse, DirectReturn: true})
		}},
	}
	for _, v := range variants {
		sch, err := v.build()
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		stats, err := rtroute.MeasureScheme(sys, sch, 3000, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		fmt.Printf("%-28s %8.3f %8.3f %10d %10.1f %10d\n",
			v.name, stats.Max, stats.Mean, sch.MaxTableWords(), sch.AvgTableWords(), stats.MaxHeaderWords)
	}
	fmt.Println("\nvia-source lengthens paths; direct-return trades header/stack for global labels")
	return nil
}
