package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"rtroute"
)

// runChurnExp is the E17/E18 dynamic-topology experiment: a maintained
// scheme serves traffic while a seeded churn model mutates the graph;
// each epoch measures drops and misroutes during convergence, the
// repair latency of the incremental RebuildNodes pass, and the dirty
// fraction (delta-rebuild cost) — optionally certifying the repaired
// plane bit-identical to a from-scratch build.
func runChurnExp(n int, seed int64) error {
	kind, err := schemeKind()
	if err != nil {
		return err
	}
	fmt.Printf("# E17/E18 — dynamic topology: seeded churn, route repair, incremental maintenance\n")
	fmt.Printf("# n=%d seed=%d scheme=%s rate=%.2g/10k epochs=%d packets=%d certify=%v\n\n",
		n, seed, trafficScheme, churnRate, churnEpochs, trafficPackets, churnCertify)

	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 32*n, 64, rng)
	// Remap weights into [33, 64]: with a max/min ratio under 2, no
	// single edge can dominate its head node's entry, so an event's
	// affected set reflects real path diversity instead of one funnel
	// edge that nearly every source routes through.
	for u := 0; u < n; u++ {
		for _, e := range g.Out(rtroute.NodeID(u)) {
			if err := g.SetEdgeWeight(rtroute.NodeID(u), e.To, 33+(e.Weight-1)%32); err != nil {
				return err
			}
		}
	}
	// Maintained schemes re-read distances after every mutation, so the
	// churn experiment always runs on the lazy (mutation-tracking)
	// oracle regardless of -metric.
	sys, err := rtroute.NewSystemWith(g, rtroute.RandomNaming(n, rng),
		rtroute.SystemConfig{Metric: rtroute.MetricLazy, LazyCacheRows: lazyCacheRows})
	if err != nil {
		return err
	}

	perEpoch := trafficPackets / int64(churnEpochs)
	if perEpoch < 1 {
		perEpoch = 1
	}
	cfg := rtroute.ChurnConfig{
		Kind:            kind,
		Build:           rtroute.BuildConfig{Seed: seed},
		ChurnSeed:       seed + 1,
		Rate:            churnRate,
		Epochs:          churnEpochs,
		PacketsPerEpoch: perEpoch,
		StaleFraction:   churnStale,
		MinWeight:       33,
		MaxWeight:       64,
		Workers:         trafficWorkers,
		Certify:         churnCertify,
		Workload: rtroute.TrafficWorkload{
			Kind:      rtroute.WorkloadKind(trafficWorkload),
			ZipfTheta: trafficZipf,
		},
	}
	sink, stop, err := attachSink(rtroute.TelemetryConfig{Shards: []int{0}, Workers: 1})
	if err != nil {
		return err
	}
	defer stop()
	cfg.Sink = sink

	res, err := rtroute.RunChurn(sys, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	fmt.Printf("\ndelta-rebuild cost: max %.1f%% of nodes per event batch, mean %.1f%% (acceptance bar: <=20%% at n=1024)\n",
		100*res.MaxDirtyFrac, 100*res.MeanDirtyFrac)
	fmt.Println("every roundtrip completed or failed typed (ErrUnroutable) — none hung; see DESIGN.md \"Dynamic topology\"")
	if benchJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", benchOut)
	}
	return nil
}

// runChurnClusterExp is the E19 experiment: seeded churn events ride
// the shard fabric as wire frames while the cluster serves roundtrips;
// each shard repairs the affected set intersected with its owned nodes
// behind its epoch fence, every batch is certified bit-identical to the
// reference (and, with -certify, to a from-scratch build), and the
// report compares serving throughput under fire against the stable
// windows between batches.
func runChurnClusterExp(n int, seed int64) error {
	kind, err := schemeKind()
	if err != nil {
		return err
	}
	fmt.Printf("# E19 — cluster churn: online repair through the shard fabric, certified under fire\n")
	fmt.Printf("# n=%d seed=%d scheme=%s shards=%d placement=%s batches=%d events=%d certify=%v\n\n",
		n, seed, trafficScheme, clusterShards, clusterPlacement, churnEpochs, churnEvents, churnCertify)

	rng := rand.New(rand.NewSource(seed))
	g := rtroute.RandomSC(n, 3*n, 64, rng)
	sys, err := rtroute.NewSystemWith(g, rtroute.RandomNaming(n, rng),
		rtroute.SystemConfig{Metric: rtroute.MetricLazy, LazyCacheRows: lazyCacheRows})
	if err != nil {
		return err
	}
	perPhase := trafficPackets / int64(2*churnEpochs)
	if perPhase < 1 {
		perPhase = 1
	}
	cfg := rtroute.ChurnClusterConfig{
		Kind:           kind,
		Build:          rtroute.BuildConfig{Seed: seed},
		Shards:         clusterShards,
		Workers:        trafficWorkers,
		Placement:      rtroute.PlacementPolicy(clusterPlacement),
		ChurnSeed:      seed + 1,
		Batches:        churnEpochs,
		EventsPerBatch: churnEvents,
		FirePackets:    perPhase,
		StablePackets:  perPhase,
		InFlight:       clusterInFlight,
		Certify:        churnCertify,
		Workload: rtroute.TrafficWorkload{
			Kind:      rtroute.WorkloadKind(trafficWorkload),
			ZipfTheta: trafficZipf,
		},
	}
	sink, stop, err := attachSink(rtroute.TelemetryConfig{Shards: []int{0}, Workers: 1})
	if err != nil {
		return err
	}
	defer stop()
	cfg.Sink = sink

	res, err := rtroute.RunChurnCluster(sys, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	fmt.Println("\nrepairs run behind per-shard epoch fences — in-flight roundtrips finish on the old epoch or fail typed, never hang")
	if benchJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", benchOut)
	}
	return nil
}

// schemeKind resolves the -scheme flag to a SchemeKind.
func schemeKind() (rtroute.SchemeKind, error) {
	switch trafficScheme {
	case "stretch6":
		return rtroute.StretchSix, nil
	case "exstretch":
		return rtroute.ExStretch, nil
	case "poly":
		return rtroute.Polynomial, nil
	case "rtz":
		return rtroute.RTZStretch3, nil
	case "hop":
		return rtroute.HopSubstrate, nil
	default:
		return 0, fmt.Errorf("unknown -scheme %q (want stretch6|exstretch|poly|rtz|hop)", trafficScheme)
	}
}
