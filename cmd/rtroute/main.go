// Command rtroute builds a routing scheme over a generated network and
// traces roundtrips interactively from the command line. It also
// exercises the wire codec end to end: -save snapshots a built scheme to
// disk, -load serves routes from a snapshot (no rebuild), -sizes prints
// the per-node encoded-bytes space report, and -connect routes through
// a running rtserve shard cluster instead of a local scheme.
//
// Usage:
//
//	rtroute -n 32 -seed 7 -scheme stretch6 -src 3 -dst 17
//	rtroute -n 64 -seed 1 -scheme exstretch -k 3 -src 0 -dst 42 -v
//	rtroute -n 32 -seed 2 -scheme poly -k 2 -all
//	rtroute -n 256 -scheme stretch6 -save s6.rtwf
//	rtroute -load s6.rtwf -all
//	rtroute -sizes
//	rtroute -connect 127.0.0.1:7070 -src 3 -dst 17
//	rtroute -connect 127.0.0.1:7070 -pairs 100 -seed 2
//	rtroute -connect 127.0.0.1:7070 -pairs 10000 -window 256
//
// When the daemons run with -http and -trace-every, -trace fetches the
// routed roundtrip's recorded hop events back from their telemetry
// surfaces and prints a per-daemon timeline:
//
//	rtroute -connect 127.0.0.1:7070 -src 3 -dst 17 \
//	        -trace 127.0.0.1:8070,127.0.0.1:8071
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"rtroute"
	"rtroute/internal/cluster"
	"rtroute/internal/wire"
)

func main() {
	var (
		n       = flag.Int("n", 32, "number of nodes")
		seed    = flag.Int64("seed", 1, "random seed")
		scheme  = flag.String("scheme", "stretch6", "scheme: stretch6|exstretch|poly|rtz|hop")
		k       = flag.Int("k", 2, "tradeoff parameter for exstretch/poly/hop")
		src     = flag.Int("src", 0, "source NAME")
		dst     = flag.Int("dst", 1, "destination NAME")
		all     = flag.Bool("all", false, "route all ordered pairs and summarize")
		graphT  = flag.String("graph", "random", "graph family: random|ring|grid|scalefree|layered")
		loadG   = flag.String("loadgraph", "", "load a graph from this file instead of generating one")
		verbo   = flag.Bool("v", false, "print the full node path")
		metric  = flag.String("metric", "dense", "distance oracle: dense (n^2 matrix) | lazy (bounded row cache)")
		save    = flag.String("save", "", "build the scheme, snapshot it to this file (wire format), and exit")
		load    = flag.String("load", "", "serve from a scheme snapshot instead of building (graph+naming+tables restored from the file)")
		sizes   = flag.Bool("sizes", false, "print the per-node encoded-bytes space report (Theorem 6 certification) and exit")
		sizesNs = flag.String("sizes-ns", "256,1024,4096", "comma-separated graph sizes for -sizes")
		connect = flag.String("connect", "", "route through a running rtserve cluster at this shard address instead of a local scheme")
		pairs   = flag.Int("pairs", 0, "with -connect: route this many random pairs and summarize (0 = the single -src/-dst pair)")
		window  = flag.Int("window", 1, "with -connect -pairs: keep this many roundtrips in flight (pipelined, out-of-order completion)")
		trace   = flag.String("trace", "", "with -connect: comma-separated daemon telemetry addresses (rtserve -http) to fetch the roundtrip's recorded hop trace from")
		churnN  = flag.Int("churn", 0, "with -connect and -load: draw this many seeded churn batches from the snapshot graph and ship each to every churn address, waiting out the repair acks (0 = off)")
		churnE  = flag.Int("churn-events", 4, "with -churn: topology events per batch")
		churnS  = flag.Int64("churn-seed", 1, "with -churn: event-model seed (the stream is a pure function of it)")
		churnA  = flag.String("churn-addrs", "", "with -churn: comma-separated daemon addresses to repair; list every daemon, or the cluster diverges (default: just -connect)")
	)
	flag.Parse()

	if *sizes {
		if err := runSizes(*sizesNs, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "rtroute:", err)
			os.Exit(1)
		}
		return
	}
	if *connect != "" {
		if *churnN > 0 {
			if err := runConnectChurn(*connect, *churnA, *load, *churnN, *churnE, *churnS); err != nil {
				fmt.Fprintln(os.Stderr, "rtroute:", err)
				os.Exit(1)
			}
			return
		}
		if err := runConnect(*connect, int32(*src), int32(*dst), *pairs, *window, *seed, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "rtroute:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*n, *seed, *scheme, *k, int32(*src), int32(*dst), *all, *graphT, *loadG,
		*verbo, rtroute.MetricKind(*metric), *save, *load); err != nil {
		fmt.Fprintln(os.Stderr, "rtroute:", err)
		os.Exit(1)
	}
}

// runSizes prints the E14 encoded space report: per-node wire bytes of
// the stretch-6 scheme across graph sizes, with the fitted growth
// exponent (Theorem 6 predicts ~sqrt n, slope 0.5 plus a log factor).
func runSizes(nsSpec string, seed int64) error {
	var ns []int
	for _, f := range strings.Split(nsSpec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -sizes-ns entry %q: %w", f, err)
		}
		if v < 2 {
			return fmt.Errorf("bad -sizes-ns entry %q: need at least 2 nodes", f)
		}
		ns = append(ns, v)
	}
	fmt.Println("# E14 — per-node encoded routing state (wire bytes), stretch6")
	pts, err := rtroute.EncodedSpaceSweep(rtroute.EncodedSpaceConfig{Ns: ns, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(rtroute.FormatEncodedSpace(pts))
	return nil
}

// runConnect is the network-client mode: roundtrips are injected into a
// running rtserve shard cluster and certified totals come back as Done
// frames — no scheme is built or loaded locally.
func runConnect(addr string, src, dst int32, pairs, window int, seed int64, trace string) error {
	cl, err := cluster.DialClient(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	kind, n, shards, err := cl.Info()
	if err != nil {
		return fmt.Errorf("cluster info from %s: %w", addr, err)
	}
	fmt.Printf("connected to %s: scheme %s, n=%d, %d shards\n", addr, kind, n, shards)
	if pairs <= 0 {
		if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 || src == dst {
			return fmt.Errorf("names must be distinct and in [0,%d)", n)
		}
		out, back, err := cl.Roundtrip(src, dst)
		if err != nil {
			return err
		}
		fmt.Printf("roundtrip %d -> %d -> %d\n", src, dst, src)
		fmt.Printf("  routed weight:  %d (out %d + back %d)\n", out.Weight+back.Weight, out.Weight, back.Weight)
		fmt.Printf("  hops:           %d (out %d + back %d)\n", out.Hops+back.Hops, out.Hops, back.Hops)
		fmt.Printf("  max header:     %d words\n", max(out.MaxHeaderWords, back.MaxHeaderWords))
		if trace != "" {
			return fetchTrace(trace)
		}
		return nil
	}
	if n < 2 {
		return fmt.Errorf("cluster serves %d node(s); -pairs needs at least 2", n)
	}
	rng := rand.New(rand.NewSource(seed))
	ps := make([]cluster.Pair, pairs)
	for i := range ps {
		s := int32(rng.Intn(n))
		d := int32(rng.Intn(n - 1))
		if d >= s {
			d++
		}
		ps[i] = cluster.Pair{Src: s, Dst: d}
	}
	var hops, weight int64
	start := time.Now()
	err = cl.Roundtrips(ps, window, func(i int, out, back wire.LegTotals) error {
		hops += int64(out.Hops) + int64(back.Hops)
		weight += int64(out.Weight) + int64(back.Weight)
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%d roundtrips over the cluster: %d hops, total weight %d\n", pairs, hops, weight)
	if window > 1 {
		fmt.Printf("%.0f roundtrips/s (window %d in flight)\n", float64(pairs)/elapsed.Seconds(), window)
	} else {
		fmt.Printf("%.0f roundtrips/s (single synchronous client)\n", float64(pairs)/elapsed.Seconds())
	}
	if trace != "" {
		return fetchTrace(trace)
	}
	return nil
}

// runConnectChurn is the churn-injector mode: it draws a seeded,
// replayable event stream against its own copy of the served snapshot
// (events must be admissible on the real topology, which the daemons
// never ship back) and broadcasts each batch to every daemon armed with
// rtserve -repair, blocking on the repair acks. Daemons apply batches
// in sequence order behind their epoch fences, so a batch is only acked
// once the owned table slice is repaired; concurrent rtroute -pairs
// clients keep routing throughout.
func runConnectChurn(addr, addrsSpec, load string, batches, eventsPer int, seed int64) error {
	if load == "" {
		return fmt.Errorf("-churn draws events against the daemons' topology: pass the served snapshot with -load")
	}
	if eventsPer < 1 {
		return fmt.Errorf("-churn-events must be at least 1")
	}
	data, err := os.ReadFile(load)
	if err != nil {
		return err
	}
	dep, err := rtroute.UnmarshalScheme(data)
	if err != nil {
		return fmt.Errorf("loading %s: %w", load, err)
	}
	ov, err := rtroute.NewChurnOverlay(dep.Graph(), rtroute.DamperOptions{})
	if err != nil {
		return err
	}
	model := rtroute.NewChurnModel(ov, seed, 1, rtroute.DefaultChurnMix, 64)

	spec := addrsSpec
	if spec == "" {
		spec = addr
	}
	var (
		clients []*cluster.Client
		names   []string
	)
	for _, raw := range strings.Split(spec, ",") {
		a := strings.TrimSpace(raw)
		if a == "" {
			continue
		}
		cl, err := cluster.DialClient(a)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", a, err)
		}
		defer cl.Close()
		clients = append(clients, cl)
		names = append(names, a)
	}
	fmt.Printf("injecting %d churn batches (%d events each, seed %d) into %d daemon(s)\n",
		batches, eventsPer, seed, len(clients))
	for b := 0; b < batches; b++ {
		seq := uint64(b + 1)
		events := make([]rtroute.ChurnEvent, 0, eventsPer)
		var at float64
		for i := 0; i < eventsPer; i++ {
			ev := model.Next()
			if _, err := ov.Apply(ev); err != nil {
				return fmt.Errorf("batch %d: %w", b, err)
			}
			events = append(events, ev)
			at = ev.At
		}
		if _, err := ov.Advance(at); err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		start := time.Now()
		for i, cl := range clients {
			if err := cl.Churn(seq, events); err != nil {
				return fmt.Errorf("batch %d to %s: %w", b, names[i], err)
			}
		}
		fmt.Printf("batch %d: %d events, %d daemon(s) repaired and acked in %v\n",
			b, len(events), len(clients), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

// fetchTrace pulls roundtrip tag 1's recorded hop events back from each
// daemon's telemetry surface (rtserve -http) and prints one timeline
// per daemon. Timestamps are on each daemon's own sink clock, so the
// timelines are not merged — each section's offsets are internally
// exact, and the hop counts line the legs up across daemons.
func fetchTrace(spec string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	for _, raw := range strings.Split(spec, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		resp, err := client.Get(u + "/trace?rt=1")
		if err != nil {
			return fmt.Errorf("fetching trace from %s: %w", u, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("reading trace from %s: %w", u, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s/trace: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
		}
		var events []rtroute.TelemetryEvent
		if err := json.Unmarshal(body, &events); err != nil {
			return fmt.Errorf("decoding trace from %s: %w", u, err)
		}
		fmt.Printf("\nhop trace from %s (%d events, daemon-local clock):\n", u, len(events))
		fmt.Print(rtroute.FormatTraceTimeline(events))
	}
	return nil
}

func makeGraph(family string, n int, rng *rand.Rand) (*rtroute.Graph, error) {
	switch family {
	case "random":
		return rtroute.RandomSC(n, 4*n, 8, rng), nil
	case "ring":
		return rtroute.Ring(n, rng), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return rtroute.Grid(side, side, rng), nil
	case "scalefree":
		return rtroute.ScaleFreeSC(n, 2, 8, rng), nil
	case "layered":
		width := 4
		layers := (n + width - 1) / width
		if layers < 2 {
			layers = 2
		}
		return rtroute.LayeredSC(layers, width, 8, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func buildKind(name string) (rtroute.SchemeKind, error) {
	switch name {
	case "stretch6":
		return rtroute.StretchSix, nil
	case "exstretch":
		return rtroute.ExStretch, nil
	case "poly":
		return rtroute.Polynomial, nil
	case "rtz":
		return rtroute.RTZStretch3, nil
	case "hop":
		return rtroute.HopSubstrate, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

func run(n int, seed int64, schemeName string, k int, src, dst int32, all bool,
	family, loadGraph string, verbose bool, metric rtroute.MetricKind, save, load string) error {
	var (
		sch rtroute.Scheme
		sys *rtroute.System
	)
	if load != "" {
		// Serve from a snapshot: graph, naming and every node's tables
		// come out of the file; only the stretch-accounting oracle is
		// recomputed.
		data, err := os.ReadFile(load)
		if err != nil {
			return err
		}
		// Say what the snapshot is before the (potentially long) table
		// decode and oracle build, and turn a version mismatch into a
		// clear message instead of a raw decode error.
		info, err := rtroute.PeekSnapshot(data)
		if err != nil {
			if errors.Is(err, rtroute.ErrSnapshotVersion) {
				return fmt.Errorf("%s was written by wire-format version %d; this build reads version %d — "+
					"rebuild the snapshot with this release's rtroute -save", load, info.Version, rtroute.SnapshotVersion)
			}
			return fmt.Errorf("reading %s: %w", load, err)
		}
		fmt.Printf("snapshot %s: scheme %s, n=%d (format v%d)\n", load, info.Kind, info.Nodes, info.Version)
		dep, err := rtroute.UnmarshalScheme(data)
		if err != nil {
			return fmt.Errorf("loading %s: %w", load, err)
		}
		sys, err = rtroute.NewSystemWith(dep.Graph(), dep.Naming(), rtroute.SystemConfig{Metric: metric})
		if err != nil {
			return err
		}
		sch = dep
		maxB, avgB := 0, 0.0
		for v := 0; v < dep.Graph().N(); v++ {
			b := dep.EncodedSize(rtroute.NodeID(v))
			avgB += float64(b)
			if b > maxB {
				maxB = b
			}
		}
		avgB /= float64(dep.Graph().N())
		fmt.Printf("restored %s from %s (%d bytes): %d nodes / %d edges; encoded state max %d B/node, avg %.1f B/node\n",
			dep.SchemeName(), load, len(data), dep.Graph().N(), dep.Graph().M(), maxB, avgB)
	} else {
		rng := rand.New(rand.NewSource(seed))
		var (
			g   *rtroute.Graph
			err error
		)
		if loadGraph != "" {
			f, err := os.Open(loadGraph)
			if err != nil {
				return err
			}
			defer f.Close()
			g, err = rtroute.ReadGraph(f)
			if err != nil {
				return fmt.Errorf("loading %s: %w", loadGraph, err)
			}
			family = loadGraph
		} else {
			g, err = makeGraph(family, n, rng)
			if err != nil {
				return err
			}
		}
		sys, err = rtroute.NewSystemWith(g, rtroute.RandomNaming(g.N(), rng), rtroute.SystemConfig{Metric: metric})
		if err != nil {
			return err
		}
		kind, err := buildKind(schemeName)
		if err != nil {
			return err
		}
		sch, err = sys.Build(kind, rtroute.WithSeed(seed), rtroute.WithK(k))
		if err != nil {
			return err
		}
		fmt.Printf("built %s over %d nodes / %d edges (%s graph); max table %d words, avg %.1f\n",
			sch.SchemeName(), g.N(), g.M(), family, sch.MaxTableWords(), sch.AvgTableWords())
	}

	if save != "" {
		blob, nodeSizes, err := rtroute.MarshalSchemeSizes(sch)
		if err != nil {
			return err
		}
		if err := os.WriteFile(save, blob, 0o644); err != nil {
			return err
		}
		maxB, total := 0, 0
		for _, b := range nodeSizes {
			total += b
			if b > maxB {
				maxB = b
			}
		}
		fmt.Printf("saved %s (%d bytes): per-node state max %d B, avg %.1f B; shared envelope %d B\n",
			save, len(blob), maxB, float64(total)/float64(len(nodeSizes)), len(blob)-total)
		return nil
	}

	g := sys.Graph
	if all {
		start := time.Now()
		stats, err := rtroute.MeasureScheme(sys, sch, g.N()*(g.N()-1), seed)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("pairs: %d  max stretch: %.3f  mean: %.3f  p99: %.3f  max header: %d words\n",
			stats.Pairs, stats.Max, stats.Mean, stats.P99, stats.MaxHeaderWords)
		// Timing goes to stderr: stdout stays byte-identical across runs
		// and oracles (the determinism contract scripted diffs rely on).
		fmt.Fprintf(os.Stderr, "measured in %v (%.0f roundtrips/s, single goroutine, reused header)\n",
			elapsed.Round(time.Millisecond), float64(stats.Pairs)/elapsed.Seconds())
		return nil
	}

	if int(src) >= g.N() || int(dst) >= g.N() || src < 0 || dst < 0 {
		return fmt.Errorf("names must be in [0,%d)", g.N())
	}
	tr, err := sch.Roundtrip(src, dst)
	if err != nil {
		return err
	}
	r := sys.R(src, dst)
	fmt.Printf("roundtrip %d -> %d -> %d\n", src, dst, src)
	fmt.Printf("  optimal roundtrip distance: %d\n", r)
	fmt.Printf("  routed weight:  %d (out %d + back %d)\n", tr.Weight(), tr.Out.Weight, tr.Back.Weight)
	fmt.Printf("  hops:           %d (out %d + back %d)\n", tr.Hops(), tr.Out.Hops, tr.Back.Hops)
	fmt.Printf("  stretch:        %.3f\n", sys.Stretch(src, dst, tr))
	fmt.Printf("  max header:     %d words\n", tr.MaxHeaderWords())
	if verbose {
		fmt.Printf("  out path  (topological ids): %v\n", tr.Out.Path)
		fmt.Printf("  back path (topological ids): %v\n", tr.Back.Path)
	}
	return nil
}
