// Command rtroute builds a routing scheme over a generated network and
// traces roundtrips interactively from the command line.
//
// Usage:
//
//	rtroute -n 32 -seed 7 -scheme stretch6 -src 3 -dst 17
//	rtroute -n 64 -seed 1 -scheme exstretch -k 3 -src 0 -dst 42 -v
//	rtroute -n 32 -seed 2 -scheme poly -k 2 -all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rtroute"
)

func main() {
	var (
		n      = flag.Int("n", 32, "number of nodes")
		seed   = flag.Int64("seed", 1, "random seed")
		scheme = flag.String("scheme", "stretch6", "scheme: stretch6|exstretch|poly")
		k      = flag.Int("k", 2, "tradeoff parameter for exstretch/poly")
		src    = flag.Int("src", 0, "source NAME")
		dst    = flag.Int("dst", 1, "destination NAME")
		all    = flag.Bool("all", false, "route all ordered pairs and summarize")
		graphT = flag.String("graph", "random", "graph family: random|ring|grid|scalefree|layered")
		load   = flag.String("load", "", "load a graph from this file instead of generating one")
		verbo  = flag.Bool("v", false, "print the full node path")
		metric = flag.String("metric", "dense", "distance oracle: dense (n^2 matrix) | lazy (bounded row cache)")
	)
	flag.Parse()

	if err := run(*n, *seed, *scheme, *k, int32(*src), int32(*dst), *all, *graphT, *load, *verbo, rtroute.MetricKind(*metric)); err != nil {
		fmt.Fprintln(os.Stderr, "rtroute:", err)
		os.Exit(1)
	}
}

func makeGraph(family string, n int, rng *rand.Rand) (*rtroute.Graph, error) {
	switch family {
	case "random":
		return rtroute.RandomSC(n, 4*n, 8, rng), nil
	case "ring":
		return rtroute.Ring(n, rng), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return rtroute.Grid(side, side, rng), nil
	case "scalefree":
		return rtroute.ScaleFreeSC(n, 2, 8, rng), nil
	case "layered":
		width := 4
		layers := (n + width - 1) / width
		if layers < 2 {
			layers = 2
		}
		return rtroute.LayeredSC(layers, width, 8, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func run(n int, seed int64, schemeName string, k int, src, dst int32, all bool, family, load string, verbose bool, metric rtroute.MetricKind) error {
	rng := rand.New(rand.NewSource(seed))
	var (
		g   *rtroute.Graph
		err error
	)
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = rtroute.ReadGraph(f)
		if err != nil {
			return fmt.Errorf("loading %s: %w", load, err)
		}
		family = load
	} else {
		g, err = makeGraph(family, n, rng)
		if err != nil {
			return err
		}
	}
	sys, err := rtroute.NewSystemWith(g, rtroute.RandomNaming(g.N(), rng), rtroute.SystemConfig{Metric: metric})
	if err != nil {
		return err
	}
	var sch rtroute.Scheme
	switch schemeName {
	case "stretch6":
		sch, err = sys.BuildStretchSix(seed)
	case "exstretch":
		sch, err = sys.BuildExStretch(k, seed)
	case "poly":
		sch, err = sys.BuildPolynomial(k)
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	if err != nil {
		return err
	}
	fmt.Printf("built %s over %d nodes / %d edges (%s graph); max table %d words, avg %.1f\n",
		sch.SchemeName(), g.N(), g.M(), family, sch.MaxTableWords(), sch.AvgTableWords())

	if all {
		start := time.Now()
		stats, err := rtroute.MeasureScheme(sys, sch, g.N()*(g.N()-1), seed)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("pairs: %d  max stretch: %.3f  mean: %.3f  p99: %.3f  max header: %d words\n",
			stats.Pairs, stats.Max, stats.Mean, stats.P99, stats.MaxHeaderWords)
		// Timing goes to stderr: stdout stays byte-identical across runs
		// and oracles (the determinism contract scripted diffs rely on).
		fmt.Fprintf(os.Stderr, "measured in %v (%.0f roundtrips/s, single goroutine, reused header)\n",
			elapsed.Round(time.Millisecond), float64(stats.Pairs)/elapsed.Seconds())
		return nil
	}

	if int(src) >= g.N() || int(dst) >= g.N() || src < 0 || dst < 0 {
		return fmt.Errorf("names must be in [0,%d)", g.N())
	}
	tr, err := sch.Roundtrip(src, dst)
	if err != nil {
		return err
	}
	r := sys.R(src, dst)
	fmt.Printf("roundtrip %d -> %d -> %d\n", src, dst, src)
	fmt.Printf("  optimal roundtrip distance: %d\n", r)
	fmt.Printf("  routed weight:  %d (out %d + back %d)\n", tr.Weight(), tr.Out.Weight, tr.Back.Weight)
	fmt.Printf("  hops:           %d (out %d + back %d)\n", tr.Hops(), tr.Out.Hops, tr.Back.Hops)
	fmt.Printf("  stretch:        %.3f\n", sys.Stretch(src, dst, tr))
	fmt.Printf("  max header:     %d words\n", tr.MaxHeaderWords())
	if verbose {
		fmt.Printf("  out path  (topological ids): %v\n", tr.Out.Path)
		fmt.Printf("  back path (topological ids): %v\n", tr.Back.Path)
	}
	return nil
}
