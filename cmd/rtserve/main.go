// Command rtserve runs one shard of a networked routing cluster: it
// restores a scheme snapshot (rtroute -save), takes ownership of its
// placement slice of the per-node routers, listens for wire frames on
// its address, and serves forever — forwarding local hops with
// shard-local state only and shipping boundary-crossing packets to the
// peer daemons named in -addrs. Every daemon computes the identical
// deterministic placement from its own copy of the snapshot, so the
// cluster needs no coordinator.
//
// A two-shard cluster on one machine:
//
//	rtroute -n 64 -scheme stretch6 -save s6.rtwf
//	rtserve -shard 0 -addrs 127.0.0.1:7070,127.0.0.1:7071 -load s6.rtwf &
//	rtserve -shard 1 -addrs 127.0.0.1:7070,127.0.0.1:7071 -load s6.rtwf &
//	rtroute -connect 127.0.0.1:7070 -src 3 -dst 17
//	rtroute -connect 127.0.0.1:7070 -pairs 20000 -window 256
//
// Packets cross shards as fixed-layout flight frames (patched in place
// on clean crossings, labels decoded only at the owning endpoints), and
// clients may keep a window of tagged roundtrips in flight — the
// daemons complete them out of order. A peer daemon that dies fails
// sends fast (the shard counts and drops) while the link redials in the
// background; it recovers when the daemon returns.
//
// Stop a daemon with SIGINT/SIGTERM; it prints its serving stats on the
// way down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"rtroute/internal/cluster"
	"rtroute/internal/wire"
)

func main() {
	var (
		shard     = flag.Int("shard", 0, "this daemon's shard index into -addrs")
		addrsSpec = flag.String("addrs", "", "comma-separated shard addresses (host:port); one entry per shard")
		load      = flag.String("load", "", "scheme snapshot to serve (wire format, from rtroute -save)")
		placement = flag.String("placement", "contiguous", "node partition: contiguous|hash|rtz")
		workers   = flag.Int("workers", 1, "serving goroutines for this shard")
		batch     = flag.Int("batch", 64, "mailbox dequeue batch size")
	)
	flag.Parse()
	if err := run(*shard, *addrsSpec, *load, *placement, *workers, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "rtserve:", err)
		os.Exit(1)
	}
}

func run(shard int, addrsSpec, load, placement string, workers, batch int) error {
	if load == "" {
		return fmt.Errorf("-load is required (snapshot from rtroute -save)")
	}
	addrs := strings.Split(addrsSpec, ",")
	if addrsSpec == "" || len(addrs) < 1 {
		return fmt.Errorf("-addrs is required (comma-separated, one address per shard)")
	}
	if shard < 0 || shard >= len(addrs) {
		return fmt.Errorf("-shard %d outside the %d-address list", shard, len(addrs))
	}
	data, err := os.ReadFile(load)
	if err != nil {
		return err
	}
	info, err := wire.PeekSnapshot(data)
	if err != nil {
		return fmt.Errorf("reading %s: %w", load, err)
	}
	fmt.Printf("snapshot %s: scheme %s, n=%d (format v%d)\n", load, info.Kind, info.Nodes, info.Version)
	dep, err := wire.UnmarshalScheme(data)
	if err != nil {
		return fmt.Errorf("loading %s: %w", load, err)
	}
	place, err := cluster.NewPlacement(dep, len(addrs), cluster.Policy(placement))
	if err != nil {
		return err
	}
	view, err := dep.ShardView(shard, place.Owner)
	if err != nil {
		return err
	}
	dep.Graph().Seal()
	tr, err := cluster.ListenTCP(shard, addrs)
	if err != nil {
		return err
	}
	sh := cluster.NewShard(view, place, tr, cluster.Options{Workers: workers, Batch: batch})
	fmt.Printf("shard %d/%d serving %d of %d nodes (%s placement) on %s with %d workers\n",
		shard, len(addrs), view.NodeCount(), dep.Graph().N(), place.Policy, tr.Addr(), workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		tr.Close()
	}()
	err = sh.Serve()
	st := sh.Stats()
	fmt.Printf("shard %d stopped: %d roundtrips completed here, %d hops, %d frames in, %d frames out, %d errors\n",
		st.Shard, st.Packets, st.Hops, st.FramesIn, st.FramesOut, st.Errors)
	return err
}
