// Command rtserve runs one shard of a networked routing cluster: it
// restores a scheme snapshot (rtroute -save), takes ownership of its
// placement slice of the per-node routers, listens for wire frames on
// its address, and serves forever — forwarding local hops with
// shard-local state only and shipping boundary-crossing packets to the
// peer daemons named in -addrs. Every daemon computes the identical
// deterministic placement from its own copy of the snapshot, so the
// cluster needs no coordinator.
//
// A two-shard cluster on one machine:
//
//	rtroute -n 64 -scheme stretch6 -save s6.rtwf
//	rtserve -shard 0 -addrs 127.0.0.1:7070,127.0.0.1:7071 -load s6.rtwf &
//	rtserve -shard 1 -addrs 127.0.0.1:7070,127.0.0.1:7071 -load s6.rtwf &
//	rtroute -connect 127.0.0.1:7070 -src 3 -dst 17
//	rtroute -connect 127.0.0.1:7070 -pairs 20000 -window 256
//
// Packets cross shards as fixed-layout flight frames (patched in place
// on clean crossings, labels decoded only at the owning endpoints), and
// clients may keep a window of tagged roundtrips in flight — the
// daemons complete them out of order. A peer daemon that dies fails
// sends fast (the shard counts and drops) while the link redials in the
// background; it recovers when the daemon returns.
//
// Every daemon carries a telemetry sink; -http exposes it:
//
//	rtserve ... -http 127.0.0.1:8070 -trace-every 64 &
//	curl 127.0.0.1:8070/metrics                    # live counters, JSON
//	curl 127.0.0.1:8070/metrics?format=prometheus  # same, scrape format
//	curl 127.0.0.1:8070/trace?rt=1                 # recorded hop events
//	go tool pprof 127.0.0.1:8070/debug/pprof/profile
//
// Stop a daemon with SIGINT/SIGTERM: it stops accepting new
// connections, drains in-flight roundtrips until its counters go quiet
// (bounded by -drain), then closes and prints its final stats snapshot.
// A second signal skips the drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rtroute"
	"rtroute/internal/churn"
	"rtroute/internal/cluster"
	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/telemetry"
	"rtroute/internal/wire"
)

func main() {
	var (
		shard     = flag.Int("shard", 0, "this daemon's shard index into -addrs")
		addrsSpec = flag.String("addrs", "", "comma-separated shard addresses (host:port); one entry per shard")
		load      = flag.String("load", "", "scheme snapshot to serve (wire format, from rtroute -save)")
		placement = flag.String("placement", "contiguous", "node partition: contiguous|hash|rtz")
		workers   = flag.Int("workers", 1, "serving goroutines for this shard")
		batch     = flag.Int("batch", 64, "mailbox dequeue batch size")
		httpAddr  = flag.String("http", "", "serve /metrics, /trace and /debug/pprof on this address (empty = off)")
		traceEach = flag.Int("trace-every", 0, "record hop traces for roundtrip tags rt with rt%N==1 (0 = off)")
		sample    = flag.Int("sample-every", 16, "sample stage timing on every k-th mailbox batch (<0 = off)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain bound")
		repair    = flag.String("repair", "", "arm online repair with this build seed (must equal the -seed given to rtroute -save): churn frames rebuild the owned table slice behind the epoch fence while serving continues; empty = serve frozen tables")
		repairK   = flag.Int("repair-k", 2, "with -repair: tradeoff parameter of the rebuilt scheme (exstretch/poly/hop)")
	)
	flag.Parse()
	if err := run(*shard, *addrsSpec, *load, *placement, *workers, *batch,
		*httpAddr, *traceEach, *sample, *drain, *repair, *repairK); err != nil {
		fmt.Fprintln(os.Stderr, "rtserve:", err)
		os.Exit(1)
	}
}

func run(shard int, addrsSpec, load, placement string, workers, batch int,
	httpAddr string, traceEvery, sampleEvery int, drain time.Duration,
	repairSpec string, repairK int) error {
	if load == "" {
		return fmt.Errorf("-load is required (snapshot from rtroute -save)")
	}
	addrs := strings.Split(addrsSpec, ",")
	if addrsSpec == "" || len(addrs) < 1 {
		return fmt.Errorf("-addrs is required (comma-separated, one address per shard)")
	}
	if shard < 0 || shard >= len(addrs) {
		return fmt.Errorf("-shard %d outside the %d-address list", shard, len(addrs))
	}
	data, err := os.ReadFile(load)
	if err != nil {
		return err
	}
	info, err := wire.PeekSnapshot(data)
	if err != nil {
		return fmt.Errorf("reading %s: %w", load, err)
	}
	fmt.Printf("snapshot %s: scheme %s, n=%d (format v%d)\n", load, info.Kind, info.Nodes, info.Version)
	dep, err := wire.UnmarshalScheme(data)
	if err != nil {
		return fmt.Errorf("loading %s: %w", load, err)
	}
	place, err := cluster.NewPlacement(dep, len(addrs), cluster.Policy(placement))
	if err != nil {
		return err
	}
	view, err := dep.ShardView(shard, place.Owner)
	if err != nil {
		return err
	}
	var repairHook func(uint64, []churn.Event) error
	if repairSpec != "" {
		seed, err := strconv.ParseInt(repairSpec, 10, 64)
		if err != nil {
			return fmt.Errorf("-repair: %w", err)
		}
		repairHook, err = armRepair(dep, view, seed, repairK)
		if err != nil {
			return fmt.Errorf("arming repair: %w", err)
		}
		fmt.Printf("shard %d: online repair armed (build seed %d, k %d)\n", shard, seed, repairK)
	}
	dep.Graph().Seal()
	tr, err := cluster.ListenTCP(shard, addrs)
	if err != nil {
		return err
	}

	// The sink is always attached — its idle cost is one predicate per
	// frame and one struct copy per batch — so /metrics can be consulted
	// (and the final snapshot printed) whether or not -http is set.
	sink := telemetry.New(telemetry.Config{
		Shards: []int{shard}, Workers: workers,
		SampleEvery: sampleEvery, TraceEvery: traceEvery,
	})
	sink.RegisterGauge("peer_downs", func() float64 { d, _ := tr.LinkStats(); return float64(d) })
	sink.RegisterGauge("link_redials", func() float64 { _, r := tr.LinkStats(); return float64(r) })

	sh := cluster.NewShard(view, place, tr, cluster.Options{
		Workers: workers, Batch: batch, Sink: sink, SinkShard: 0,
		Repair: repairHook,
	})
	if repairHook != nil {
		sink.RegisterGauge("churn_drops_total", func() float64 { d, _, _, _ := sh.ChurnStats(); return float64(d) })
		sink.RegisterGauge("churn_misroutes_total", func() float64 { _, m, _, _ := sh.ChurnStats(); return float64(m) })
		sink.RegisterGauge("churn_repairs_total", func() float64 { _, _, r, _ := sh.ChurnStats(); return float64(r) })
		sink.RegisterGauge("churn_repair_ns_mean", func() float64 {
			_, _, r, ns := sh.ChurnStats()
			if r == 0 {
				return 0
			}
			return float64(ns) / float64(r)
		})
	}
	fmt.Printf("shard %d/%d serving %d of %d nodes (%s placement) on %s with %d workers\n",
		shard, len(addrs), view.NodeCount(), dep.Graph().N(), place.Policy, tr.Addr(), workers)

	if httpAddr != "" {
		extra := func() map[string]any {
			return map[string]any{
				"shard": shard, "shards": len(addrs), "addr": tr.Addr(),
				"scheme": dep.Kind().String(), "nodes": dep.Graph().N(),
			}
		}
		srv, bound, err := telemetry.Serve(httpAddr, sink, extra)
		if err != nil {
			return fmt.Errorf("telemetry http: %w", err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics (trace-every %d, sample-every %d)\n",
			bound, traceEvery, sampleEvery)
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Printf("shard %d: draining (next signal forces exit)\n", shard)
		tr.CloseAccept()
		go func() { // second signal: skip the drain
			<-sigc
			tr.Close()
		}()
		drainThenClose(tr, sink, drain)
	}()

	err = sh.Serve()
	st := sh.Stats()
	fmt.Printf("shard %d stopped: %d roundtrips completed here, %d hops, %d frames in, %d frames out, %d errors\n",
		st.Shard, st.Packets, st.Hops, st.FramesIn, st.FramesOut, st.Errors)
	downs, redials := tr.LinkStats()
	fmt.Printf("links: %d peer-down transitions, %d redial attempts; trace events dropped: %d\n",
		downs, redials, sink.TraceDropped())
	if repairHook != nil {
		d, m, reps, ns := sh.ChurnStats()
		mean := time.Duration(0)
		if reps > 0 {
			mean = time.Duration(ns / reps)
		}
		fmt.Printf("churn: %d repairs applied (mean %v), %d roundtrips dropped, %d misrouted\n",
			reps, mean, d, m)
	}
	if rows := sink.Snapshot().StageTable(st.Packets); len(rows) > 0 {
		fmt.Printf("\nstage timing (per completed roundtrip)\n%s", telemetry.FormatStageTable(rows, 0))
	}
	return err
}

// armRepair builds the daemon's private repair replica: a clone of the
// snapshot graph, the same scheme rebuilt from the operator-supplied
// build seed — so its tables start bit-identical to the snapshot every
// other daemon restored — and a churn overlay over the clone. The
// returned hook is the shard's Options.Repair: applied under the epoch
// fence with batches in sequence order, it folds the events into the
// overlay, rebuilds the affected set intersected with this daemon's
// owned slice, and rebinds the serving deployment to the repaired
// plane. In-flight roundtrips finish on the pre-fence epoch or come
// back as typed drops; nothing ever sees a half-patched table.
func armRepair(dep *core.Deployment, view *core.ShardView, seed int64, k int) (func(uint64, []churn.Event) error, error) {
	g := dep.Graph().Clone()
	sys, err := rtroute.NewSystemWith(g, dep.Naming(), rtroute.SystemConfig{Metric: rtroute.MetricLazy})
	if err != nil {
		return nil, err
	}
	m, err := sys.BuildMaintained(dep.Kind(), rtroute.WithSeed(seed), rtroute.WithK(k))
	if err != nil {
		return nil, err
	}
	ov, err := churn.NewOverlay(g, churn.NewDamper(churn.DamperConfig{}))
	if err != nil {
		return nil, err
	}
	seen := make([]bool, g.N())
	return func(seq uint64, events []churn.Event) error {
		var dirty []graph.NodeID
		add := func(ds []graph.NodeID) {
			for _, d := range ds {
				if !seen[d] {
					seen[d] = true
					dirty = append(dirty, d)
				}
			}
		}
		var at float64
		for _, ev := range events {
			ds, err := ov.Apply(ev)
			if err != nil {
				return fmt.Errorf("churn batch %d: %w", seq, err)
			}
			add(ds)
			at = ev.At
		}
		released, err := ov.Advance(at)
		if err != nil {
			return fmt.Errorf("churn batch %d: %w", seq, err)
		}
		add(released)
		for _, d := range dirty {
			seen[d] = false
		}
		churn.SortNodeIDs(dirty)
		if _, err := m.RebuildNodesFor(dirty, view.Owns); err != nil {
			return fmt.Errorf("churn batch %d: %w", seq, err)
		}
		dep.Rebind(m.Plane())
		return nil
	}, nil
}

// drainThenClose watches the sink's counters until they hold still for
// two consecutive polls (the in-flight roundtrips have either completed
// or are stuck behind a dead peer) or the bound expires, then closes
// the transport for real.
func drainThenClose(tr *cluster.TCPTransport, sink *telemetry.Sink, bound time.Duration) {
	const poll = 100 * time.Millisecond
	deadline := time.Now().Add(bound)
	prev := sink.Snapshot().Totals
	quiet := 0
	for time.Now().Before(deadline) && quiet < 2 {
		time.Sleep(poll)
		cur := sink.Snapshot().Totals
		if cur == prev {
			quiet++
		} else {
			quiet = 0
		}
		prev = cur
	}
	tr.Close()
}
