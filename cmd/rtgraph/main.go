// Command rtgraph generates the synthetic networks used by the
// experiments and prints their structural statistics, including the
// roundtrip-metric quantities the paper's analyses revolve around.
//
// Usage:
//
//	rtgraph -type random -n 64 -seed 3
//	rtgraph -type layered -n 40 -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rtroute"
)

func main() {
	var (
		typ  = flag.String("type", "random", "graph family: random|gnp|ring|grid|scalefree|layered|complete")
		n    = flag.Int("n", 64, "number of nodes")
		seed = flag.Int64("seed", 1, "random seed")
		maxW = flag.Int64("maxw", 8, "maximum edge weight")
		out  = flag.String("o", "", "write the graph to this file (exchange format)")
		dot  = flag.Bool("dot", false, "print Graphviz DOT instead of statistics")
	)
	flag.Parse()
	if err := run(*typ, *n, *seed, rtroute.Dist(*maxW), *out, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "rtgraph:", err)
		os.Exit(1)
	}
}

func run(typ string, n int, seed int64, maxW rtroute.Dist, out string, dot bool) error {
	rng := rand.New(rand.NewSource(seed))
	var g *rtroute.Graph
	switch typ {
	case "random":
		g = rtroute.RandomSC(n, 4*n, maxW, rng)
	case "gnp":
		g = rtroute.RandomGNP(n, 0.1, maxW, rng)
	case "ring":
		g = rtroute.Ring(n, rng)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g = rtroute.Grid(side, side, rng)
	case "scalefree":
		g = rtroute.ScaleFreeSC(n, 2, maxW, rng)
	case "layered":
		g = rtroute.LayeredSC((n+3)/4, 4, maxW, rng)
	case "complete":
		g = rtroute.Complete(n, maxW, rng)
	default:
		return fmt.Errorf("unknown graph type %q", typ)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := g.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d nodes / %d edges to %s\n", g.N(), g.M(), out)
	}
	if dot {
		fmt.Print(g.DOT(typ))
		return nil
	}

	m := rtroute.AllPairsParallel(g, 0)
	fmt.Printf("family:              %s\n", typ)
	fmt.Printf("nodes / edges:       %d / %d\n", g.N(), g.M())
	fmt.Printf("strongly connected:  %v\n", rtroute.StronglyConnected(g))
	fmt.Printf("max edge weight:     %d\n", g.MaxWeight())
	fmt.Printf("one-way diameter:    %d\n", m.Diam())
	fmt.Printf("roundtrip diameter:  %d\n", m.RTDiam())

	// Asymmetry profile: how different d(u,v) and d(v,u) are.
	var maxRatio float64
	var symPairs, pairs int
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			duv := float64(m.D(rtroute.NodeID(u), rtroute.NodeID(v)))
			dvu := float64(m.D(rtroute.NodeID(v), rtroute.NodeID(u)))
			pairs++
			if duv == dvu {
				symPairs++
			}
			ratio := duv / dvu
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	fmt.Printf("symmetric pairs:     %d / %d\n", symPairs, pairs)
	fmt.Printf("max d(u,v)/d(v,u):   %.2f\n", maxRatio)
	return nil
}
