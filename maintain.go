package rtroute

import (
	"fmt"
	"math/rand"
	"reflect"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/rtz"
)

// MaintainReport accounts one RebuildNodes pass: how much per-node
// solver state was re-derived versus cheaply patched.
type MaintainReport = core.MaintainReport

// Maintained couples a live routing scheme with incremental maintenance
// under topology churn. Build once with System.BuildMaintained, then
// after each batch of graph mutations call RebuildNodes with the union
// of the events' may-use affected sets (churn.Overlay computes them);
// the scheme comes back route-identical to a from-scratch Build on the
// mutated graph, having re-run per-node construction only for the dirty
// set.
//
// StretchSix and RTZStretch3 maintain their plane in place — the Scheme
// returned by Plane stays valid (same pointer) across rebuilds. The
// remaining kinds (ExStretch, Polynomial, HopSubstrate) have no
// incremental path yet: RebuildNodes falls back to a full rebuild and
// swaps in a fresh plane, so callers must re-fetch Plane afterwards.
type Maintained struct {
	sys   *System
	kind  SchemeKind
	cfg   BuildConfig
	plane Scheme

	s6   *core.S6Maintainer
	rtzM *rtz.Maintainer
}

// BuildMaintained builds a scheme of the given kind exactly as Build
// would — same seed, same rng consumption, same tables — and returns it
// wrapped with incremental maintenance.
func (s *System) BuildMaintained(kind SchemeKind, opts ...BuildOption) (*Maintained, error) {
	cfg := BuildConfig{K: 2}
	for _, o := range opts {
		o(&cfg)
	}
	// A maintained scheme re-reads distances after every mutation, so the
	// oracle must track the graph. The dense matrix is computed once and
	// frozen; the lazy oracle re-derives rows against the graph's current
	// generation (see LazyOracle) and is the one BuildMaintained accepts.
	if _, ok := s.Metric.(*graph.LazyOracle); !ok {
		return nil, fmt.Errorf("rtroute: BuildMaintained needs a mutation-tracking oracle; create the System with MetricLazy")
	}
	m := &Maintained{sys: s, kind: kind, cfg: cfg}
	switch kind {
	case StretchSix:
		mt, err := core.NewStretchSixMaintained(s.Graph, s.Metric, s.Naming, cfg.Seed, core.Stretch6Config{
			Blocks:       cfg.Blocks,
			Substrate:    cfg.Substrate,
			ViaSource:    cfg.ViaSource,
			BuildWorkers: cfg.BuildWorkers,
		})
		if err != nil {
			return nil, err
		}
		m.s6 = mt
		m.plane = mt.Plane()
	case RTZStretch3:
		rng := rand.New(rand.NewSource(cfg.Seed))
		mt, err := rtz.NewMaintained(s.Graph, s.Metric, rng, cfg.Substrate)
		if err != nil {
			return nil, err
		}
		plane, err := core.NewRTZPlane(mt.Scheme(), s.Naming)
		if err != nil {
			return nil, err
		}
		m.rtzM = mt
		m.plane = plane
	case ExStretch, Polynomial, HopSubstrate:
		plane, err := s.BuildWith(kind, cfg)
		if err != nil {
			return nil, err
		}
		m.plane = plane
	default:
		return nil, fmt.Errorf("rtroute: unknown scheme kind %v", kind)
	}
	return m, nil
}

// Plane returns the live scheme. For StretchSix and RTZStretch3 the
// returned value is stable across RebuildNodes; for the full-rebuild
// kinds it is replaced by each RebuildNodes call.
func (m *Maintained) Plane() Scheme { return m.plane }

// Kind returns the scheme kind being maintained.
func (m *Maintained) Kind() SchemeKind { return m.kind }

// RebuildNodes incorporates graph mutations whose combined may-use
// affected set is dirty. The graph must already be mutated (the churn
// overlay mutates it while computing the set). On return the plane is
// route-identical to a fresh Build with the same configuration on the
// current graph.
func (m *Maintained) RebuildNodes(dirty []NodeID) (MaintainReport, error) {
	switch {
	case m.s6 != nil:
		return m.s6.RebuildNodes(dirty)
	case m.rtzM != nil:
		rep, err := m.rtzM.Apply(dirty)
		if err != nil {
			return MaintainReport{}, err
		}
		return MaintainReport{
			DirtyNodes:      rep.DirtyNodes,
			RebuiltTrees:    rep.RebuiltTrees,
			RebuiltClusters: rep.RebuiltClusters,
			PatchedLabels:   len(rep.ChangedLabels),
		}, nil
	default:
		// No incremental path for this kind: rebuild from scratch and
		// swap the plane.
		plane, err := m.sys.BuildWith(m.kind, m.cfg)
		if err != nil {
			return MaintainReport{}, err
		}
		m.plane = plane
		n := m.sys.Graph.N()
		return MaintainReport{
			DirtyNodes:    len(dirty),
			RebuiltTables: n,
			FullRebuild:   true,
		}, nil
	}
}

// RebuildNodesFor is RebuildNodes restricted to a shard's slice of the
// plane: per-node table rebuilds are filtered to the nodes owned reports
// true for, leaving foreign tables stale — harmless for a shard that
// only forwards at owned nodes, and exactly what the cluster repair
// path certifies (owned LocalStates against a reference replica).
// StretchSix filters steps that are per-node; RTZStretch3's substrate
// state is shared across all nodes, so it takes the full delta; the
// full-rebuild kinds rebuild and swap the plane as RebuildNodes does
// (re-fetch Plane, or Rebind a Deployment, afterwards). owned == nil
// behaves exactly like RebuildNodes.
func (m *Maintained) RebuildNodesFor(dirty []NodeID, owned func(NodeID) bool) (MaintainReport, error) {
	if m.s6 != nil {
		return m.s6.RebuildNodesOwned(dirty, owned)
	}
	return m.RebuildNodes(dirty)
}

// Certify verifies the maintained plane is route-identical to a fresh
// Build with the same configuration on the current graph: it rebuilds
// from scratch and compares the two planes' per-node LocalState
// decompositions bit for bit. This is the churn experiments' correctness
// oracle after every event batch; it costs a full build plus a
// decomposition pass.
func (m *Maintained) Certify() error {
	fresh, err := m.sys.BuildWith(m.kind, m.cfg)
	if err != nil {
		return fmt.Errorf("rtroute: certification rebuild: %w", err)
	}
	return CertifyIdentical(m.plane, fresh)
}

// CertifyIdentical reports whether two forwarding planes carry identical
// routing state: both are decomposed into canonical per-node LocalState
// (sorted dictionaries, value tables) and compared bit for bit, along
// with the shared O(1) parameters. Planes that pass forward every packet
// identically.
func CertifyIdentical(a, b ForwardingPlane) error {
	sa, la, err := core.Decompose(a)
	if err != nil {
		return err
	}
	sb, lb, err := core.Decompose(b)
	if err != nil {
		return err
	}
	if sa.Kind != sb.Kind {
		return fmt.Errorf("rtroute: kind mismatch: %v vs %v", sa.Kind, sb.Kind)
	}
	if !reflect.DeepEqual(sa.Names, sb.Names) {
		return fmt.Errorf("rtroute: namings differ")
	}
	if sa.K != sb.K || sa.Levels != sb.Levels || sa.ViaSource != sb.ViaSource || sa.DirectReturn != sb.DirectReturn {
		return fmt.Errorf("rtroute: shared parameters differ")
	}
	if len(la) != len(lb) {
		return fmt.Errorf("rtroute: %d vs %d local states", len(la), len(lb))
	}
	for v := range la {
		if !reflect.DeepEqual(la[v], lb[v]) {
			return fmt.Errorf("rtroute: node %d local state differs", v)
		}
	}
	return nil
}
