package rtroute

import (
	"math/rand"
	"testing"

	"rtroute/internal/churn"
	"rtroute/internal/graph"
)

// churnSystem builds a lazy-oracle System over a random SC graph that
// the test can mutate.
func churnSystem(t *testing.T, n int, seed int64) *System {
	t.Helper()
	g := graph.RandomSC(n, 3*n, 64, rand.New(rand.NewSource(seed)))
	sys, err := NewSystemWith(g, nil, SystemConfig{Metric: MetricLazy})
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	return sys
}

// allNodes returns [0, n).
func allNodes(n int) []NodeID {
	all := make([]NodeID, n)
	for i := range all {
		all[i] = NodeID(i)
	}
	return all
}

// TestMaintainedRequiresLazyOracle locks the oracle guard: a dense
// metric is frozen at build time and must be rejected.
func TestMaintainedRequiresLazyOracle(t *testing.T) {
	g := graph.RandomSC(16, 32, 32, rand.New(rand.NewSource(1)))
	sys, err := NewSystem(g, nil)
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	if _, err := sys.BuildMaintained(StretchSix, WithSeed(7)); err == nil {
		t.Fatalf("BuildMaintained accepted a dense (frozen) oracle")
	}
}

// TestRebuildAllMatchesFreshBuild is the satellite property test: after
// arbitrary topology mutations, RebuildNodes over ALL nodes must yield a
// plane bit-identical to a from-scratch Build on the mutated graph, for
// every scheme kind.
func TestRebuildAllMatchesFreshBuild(t *testing.T) {
	kinds := []struct {
		name string
		kind SchemeKind
	}{
		{"stretch6", StretchSix},
		{"exstretch", ExStretch},
		{"poly", Polynomial},
		{"rtz", RTZStretch3},
		{"hop", HopSubstrate},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			const n = 40
			sys := churnSystem(t, n, 0xC0FFEE+int64(tc.kind))
			m, err := sys.BuildMaintained(tc.kind, WithSeed(42))
			if err != nil {
				t.Fatalf("BuildMaintained: %v", err)
			}
			if err := m.Certify(); err != nil {
				t.Fatalf("pre-churn certification: %v", err)
			}

			ov, err := churn.NewOverlay(sys.Graph, churn.NewDamper(churn.DamperConfig{}))
			if err != nil {
				t.Fatalf("overlay: %v", err)
			}
			model := churn.NewModel(ov, 99, 1.0, churn.DefaultMix, 64)
			for i := 0; i < 6; i++ {
				ev := model.Next()
				if _, err := ov.Apply(ev); err != nil {
					t.Fatalf("apply %v: %v", ev, err)
				}
			}

			if _, err := m.RebuildNodes(allNodes(n)); err != nil {
				t.Fatalf("RebuildNodes(all): %v", err)
			}
			if err := m.Certify(); err != nil {
				t.Fatalf("post-churn certification: %v", err)
			}
		})
	}
}

// TestIncrementalMatchesFreshUnderEventFuzz drives random event
// sequences through the churn model and, after every event, delta-
// rebuilds only the event's may-use affected set — then certifies the
// maintained plane bit-identical to a from-scratch build. This is the
// core incremental-maintenance contract for the two kinds with a real
// delta path.
func TestIncrementalMatchesFreshUnderEventFuzz(t *testing.T) {
	kinds := []struct {
		name string
		kind SchemeKind
	}{
		{"stretch6", StretchSix},
		{"rtz", RTZStretch3},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			for run := int64(0); run < 3; run++ {
				const n = 32
				sys := churnSystem(t, n, 1000+run)
				m, err := sys.BuildMaintained(tc.kind, WithSeed(7+run))
				if err != nil {
					t.Fatalf("run %d: BuildMaintained: %v", run, err)
				}
				ov, err := churn.NewOverlay(sys.Graph, churn.NewDamper(churn.DamperConfig{}))
				if err != nil {
					t.Fatalf("run %d: overlay: %v", run, err)
				}
				model := churn.NewModel(ov, 500+run, 1.0, churn.DefaultMix, 64)
				for i := 0; i < 10; i++ {
					ev := model.Next()
					dirty, err := ov.Apply(ev)
					if err != nil {
						t.Fatalf("run %d event %d (%v): %v", run, i, ev, err)
					}
					rep, err := m.RebuildNodes(dirty)
					if err != nil {
						t.Fatalf("run %d event %d: RebuildNodes: %v", run, i, err)
					}
					if rep.DirtyNodes != len(dirty) {
						t.Fatalf("run %d event %d: report dirty %d, want %d", run, i, rep.DirtyNodes, len(dirty))
					}
					if err := m.Certify(); err != nil {
						t.Fatalf("run %d event %d (%v, %d dirty): %v", run, i, ev, len(dirty), err)
					}
				}
			}
		})
	}
}

// TestModelReplayDeterminism locks the replayability contract: two
// models over identical overlays with the same (seed, rate, mix) emit
// identical event sequences.
func TestModelReplayDeterminism(t *testing.T) {
	mk := func() (*churn.Overlay, *churn.Model) {
		g := graph.RandomSC(24, 72, 64, rand.New(rand.NewSource(5)))
		ov, err := churn.NewOverlay(g, churn.NewDamper(churn.DamperConfig{}))
		if err != nil {
			t.Fatalf("overlay: %v", err)
		}
		return ov, churn.NewModel(ov, 31337, 2.0, churn.DefaultMix, 64)
	}
	ovA, a := mk()
	ovB, b := mk()
	for i := 0; i < 200; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, eb)
		}
		da, errA := ovA.Apply(ea)
		db, errB := ovB.Apply(eb)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("event %d: apply errors diverged: %v vs %v", i, errA, errB)
		}
		if len(da) != len(db) {
			t.Fatalf("event %d: dirty sets diverged: %d vs %d", i, len(da), len(db))
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("event %d: dirty[%d] = %d vs %d", i, j, da[j], db[j])
			}
		}
	}
}

// TestAffectedSetIsSound checks the may-use affected set against brute
// force: every node whose distance row (either direction) changes under
// a reweight must be in the set.
func TestAffectedSetIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomSC(20, 60, 32, rng)
		n := g.N()
		// Pick an arbitrary edge.
		var u, v NodeID
		for {
			u = NodeID(rng.Intn(n))
			out := g.Out(u)
			if len(out) > 0 {
				v = out[rng.Intn(len(out))].To
				break
			}
		}
		before := make([]*graph.SSSP, n)
		beforeRev := make([]*graph.SSSP, n)
		for i := 0; i < n; i++ {
			f, r := graph.Dijkstra(g, NodeID(i)), graph.DijkstraRev(g, NodeID(i))
			before[i], beforeRev[i] = &f, &r
		}
		wNew := graph.Dist(1 + rng.Int63n(64))
		dirty := churn.Affected(g, u, v, wNew) // mutates g
		inDirty := make(map[NodeID]bool, len(dirty))
		for _, x := range dirty {
			inDirty[x] = true
		}
		for i := 0; i < n; i++ {
			x := NodeID(i)
			after, afterRev := graph.Dijkstra(g, x), graph.DijkstraRev(g, x)
			changed := false
			for j := 0; j < n; j++ {
				if after.Dist[j] != before[i].Dist[j] || afterRev.Dist[j] != beforeRev[i].Dist[j] {
					changed = true
					break
				}
			}
			if changed && !inDirty[x] {
				t.Fatalf("trial %d: node %d's rows changed under reweight (%d,%d)->%d but is not in the affected set",
					trial, x, u, v, wNew)
			}
		}
	}
}

// TestRunChurnSmoke runs the full epoch loop — events, stale window,
// repair, certification, post-repair serving — at test scale.
func TestRunChurnSmoke(t *testing.T) {
	sys := churnSystem(t, 64, 42)
	res, err := RunChurn(sys, ChurnConfig{
		Kind:            StretchSix,
		Build:           BuildConfig{Seed: 7},
		ChurnSeed:       1234,
		Rate:            4,
		Epochs:          3,
		PacketsPerEpoch: 400,
		Certify:         true,
		Workers:         4,
	})
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if res.TotalRepairs != 3 {
		t.Fatalf("repairs = %d, want 3", res.TotalRepairs)
	}
	if res.TotalServed == 0 {
		t.Fatalf("no roundtrips served")
	}
	for _, ep := range res.Epochs {
		if ep.PostDrops != 0 {
			t.Fatalf("epoch %d: %d drops on repaired tables", ep.Epoch, ep.PostDrops)
		}
	}
	t.Logf("\n%s", res.Format())
}
