// Tests for the unified Build API (every legacy Build* configuration
// must be expressible and route-identical), the Stretch Inf guard, and
// deployment serving under the traffic engine.
package rtroute

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/traffic"
)

// sameSchemeRoutes samples pairs and demands bit-identical roundtrip
// traces from the two planes.
func sameSchemeRoutes(t *testing.T, name string, a, b ForwardingPlane, n, pairs int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < pairs; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		if src == dst {
			continue
		}
		ta, err := sim.Roundtrip(a, src, dst, 0)
		if err != nil {
			t.Fatalf("%s: legacy roundtrip %d->%d: %v", name, src, dst, err)
		}
		tb, err := sim.Roundtrip(b, src, dst, 0)
		if err != nil {
			t.Fatalf("%s: unified roundtrip %d->%d: %v", name, src, dst, err)
		}
		if !reflect.DeepEqual(ta.Out.Path, tb.Out.Path) || !reflect.DeepEqual(ta.Back.Path, tb.Back.Path) ||
			ta.Weight() != tb.Weight() || ta.MaxHeaderWords() != tb.MaxHeaderWords() {
			t.Fatalf("%s: routes diverge for %d->%d", name, src, dst)
		}
	}
}

// TestBuildCoversLegacyConfigs constructs every legacy Build*
// configuration three ways — deprecated method, direct core constructor
// (the pre-redesign behavior), and the unified Build API — and asserts
// identical routes and table accounting.
func TestBuildCoversLegacyConfigs(t *testing.T) {
	const n = 28
	sys := newTestSystem(t, 9, n)
	seed := int64(5)
	coreRNG := func() *rand.Rand { return rand.New(rand.NewSource(seed)) }

	cases := []struct {
		name   string
		legacy func() (ForwardingPlane, error)
		direct func() (ForwardingPlane, error)
		build  func() (ForwardingPlane, error)
	}{
		{
			"stretch6",
			func() (ForwardingPlane, error) { return sys.BuildStretchSix(seed) },
			func() (ForwardingPlane, error) {
				return core.NewStretchSix(sys.Graph, sys.Metric, sys.Naming, coreRNG(), core.Stretch6Config{})
			},
			func() (ForwardingPlane, error) { return sys.Build(StretchSix, WithSeed(seed)) },
		},
		{
			"stretch6-viasource",
			func() (ForwardingPlane, error) { return sys.BuildStretchSixViaSource(seed) },
			func() (ForwardingPlane, error) {
				return core.NewStretchSix(sys.Graph, sys.Metric, sys.Naming, coreRNG(), core.Stretch6Config{ViaSource: true})
			},
			func() (ForwardingPlane, error) { return sys.Build(StretchSix, WithSeed(seed), WithViaSource()) },
		},
		{
			"stretch6-with",
			func() (ForwardingPlane, error) {
				return sys.BuildStretchSixWith(seed, Stretch6Options{
					Blocks:    BlockOptions{Boost: 3},
					Substrate: SubstrateOptions{CenterCount: 6},
				})
			},
			func() (ForwardingPlane, error) {
				return core.NewStretchSix(sys.Graph, sys.Metric, sys.Naming, coreRNG(), core.Stretch6Config{
					Blocks:    BlockOptions{Boost: 3},
					Substrate: SubstrateOptions{CenterCount: 6},
				})
			},
			func() (ForwardingPlane, error) {
				return sys.Build(StretchSix, WithSeed(seed),
					WithBlocks(BlockOptions{Boost: 3}),
					WithSubstrate(SubstrateOptions{CenterCount: 6}))
			},
		},
		{
			"exstretch-k3",
			func() (ForwardingPlane, error) { return sys.BuildExStretch(3, seed) },
			func() (ForwardingPlane, error) {
				return core.NewExStretch(sys.Graph, sys.Metric, sys.Naming, coreRNG(), core.ExStretchConfig{K: 3})
			},
			func() (ForwardingPlane, error) { return sys.Build(ExStretch, WithK(3), WithSeed(seed)) },
		},
		{
			"exstretch-directreturn",
			func() (ForwardingPlane, error) { return sys.BuildExStretchDirectReturn(2, seed) },
			func() (ForwardingPlane, error) {
				return core.NewExStretch(sys.Graph, sys.Metric, sys.Naming, coreRNG(), core.ExStretchConfig{K: 2, DirectReturn: true})
			},
			func() (ForwardingPlane, error) {
				return sys.Build(ExStretch, WithK(2), WithSeed(seed), WithDirectReturn())
			},
		},
		{
			"exstretch-with",
			func() (ForwardingPlane, error) {
				return sys.BuildExStretchWith(seed, ExStretchOptions{
					K: 2, CoverK: 3, ScaleBase: 1.8, Variant: CoverBallGrowing,
				})
			},
			func() (ForwardingPlane, error) {
				return core.NewExStretch(sys.Graph, sys.Metric, sys.Naming, coreRNG(), core.ExStretchConfig{
					K: 2, CoverK: 3, ScaleBase: 1.8, Variant: CoverBallGrowing,
				})
			},
			func() (ForwardingPlane, error) {
				return sys.Build(ExStretch, WithK(2), WithSeed(seed), WithCoverK(3),
					WithScaleBase(1.8), WithCoverVariant(CoverBallGrowing))
			},
		},
		{
			"poly-k2",
			func() (ForwardingPlane, error) { return sys.BuildPolynomial(2) },
			func() (ForwardingPlane, error) {
				return core.NewPolynomialStretch(sys.Graph, sys.Metric, sys.Naming, core.PolyConfig{K: 2})
			},
			func() (ForwardingPlane, error) { return sys.Build(Polynomial, WithK(2)) },
		},
		{
			"poly-variant",
			func() (ForwardingPlane, error) { return sys.BuildPolynomialVariant(2, 1.7, CoverBallGrowing) },
			func() (ForwardingPlane, error) {
				return core.NewPolynomialStretch(sys.Graph, sys.Metric, sys.Naming,
					core.PolyConfig{K: 2, ScaleBase: 1.7, Variant: CoverBallGrowing})
			},
			func() (ForwardingPlane, error) {
				return sys.Build(Polynomial, WithK(2), WithScaleBase(1.7), WithCoverVariant(CoverBallGrowing))
			},
		},
		{
			"poly-with",
			func() (ForwardingPlane, error) {
				return sys.BuildPolynomialWith(PolyOptions{K: 2, BuildWorkers: 2})
			},
			func() (ForwardingPlane, error) {
				return core.NewPolynomialStretch(sys.Graph, sys.Metric, sys.Naming, core.PolyConfig{K: 2, BuildWorkers: 2})
			},
			func() (ForwardingPlane, error) {
				return sys.Build(Polynomial, WithK(2), WithBuildWorkers(2))
			},
		},
		{
			"rtz-plane",
			func() (ForwardingPlane, error) { return sys.BuildRTZPlane(seed) },
			func() (ForwardingPlane, error) {
				// The pre-redesign path went through the traffic adapter.
				sub, err := rtz.New(sys.Graph, sys.Metric, coreRNG(), rtz.Config{})
				if err != nil {
					return nil, err
				}
				return traffic.NewRTZPlane(sub, sys.Naming)
			},
			func() (ForwardingPlane, error) { return sys.Build(RTZStretch3, WithSeed(seed)) },
		},
		{
			"hop-plane",
			func() (ForwardingPlane, error) { return sys.BuildHopPlane(2) },
			func() (ForwardingPlane, error) {
				hop, err := rtz.NewHop(sys.Graph, sys.Metric, 2, 2, CoverAwerbuchPeleg)
				if err != nil {
					return nil, err
				}
				return traffic.NewHopPlane(hop, sys.Naming)
			},
			func() (ForwardingPlane, error) { return sys.Build(HopSubstrate, WithK(2)) },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := tc.legacy()
			if err != nil {
				t.Fatal(err)
			}
			direct, err := tc.direct()
			if err != nil {
				t.Fatal(err)
			}
			unified, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			sameSchemeRoutes(t, tc.name+"/legacy-vs-unified", legacy, unified, n, 150, 31)
			sameSchemeRoutes(t, tc.name+"/direct-vs-unified", direct, unified, n, 150, 32)
			ls, okL := legacy.(Scheme)
			us, okU := unified.(Scheme)
			if okL && okU {
				if ls.MaxTableWords() != us.MaxTableWords() || ls.AvgTableWords() != us.AvgTableWords() {
					t.Fatalf("table accounting diverges: legacy (%d, %.2f) unified (%d, %.2f)",
						ls.MaxTableWords(), ls.AvgTableWords(), us.MaxTableWords(), us.AvgTableWords())
				}
			}
		})
	}
}

// TestStretchInfUnreachable locks the Stretch guard: a pair with
// infinite roundtrip distance must report +Inf, not a finite ratio
// against the Inf sentinel. Such systems only arise hand-assembled (the
// constructor rejects non-strongly-connected graphs), which is exactly
// how analysis code over partial graphs uses the helper.
func TestStretchInfUnreachable(t *testing.T) {
	// 0 -> 1 with no way back: r(0,1) = Inf.
	g := NewGraph(2)
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	sys := &System{Graph: g, Metric: AllPairs(g), Naming: IdentityNaming(2)}
	tr := &RoundtripTrace{
		Out:  &sim.Trace{Weight: 3, Hops: 1},
		Back: &sim.Trace{Weight: 0, Hops: 0},
	}
	if got := sys.Stretch(0, 1, tr); !math.IsInf(got, 1) {
		t.Fatalf("stretch of unreachable pair = %v, want +Inf", got)
	}
	// The degenerate same-node case still reports 1.
	if got := sys.Stretch(0, 0, &RoundtripTrace{Out: &sim.Trace{}, Back: &sim.Trace{}}); got != 1 {
		t.Fatalf("stretch of identical pair = %v, want 1", got)
	}
}

// TestDeploymentRoutersConcurrent drives roundtrips through the raw
// Deployment — per-hop Router dispatch, NOT the flattened compile path
// — from many goroutines at once, and demands the traces match the
// monolithic scheme's. Run under -race in CI, this certifies the
// router indirection itself for concurrent service.
func TestDeploymentRoutersConcurrent(t *testing.T) {
	const n = 48
	sys := newTestSystem(t, 8, n)
	s6, err := sys.Build(StretchSix, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(s6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for i := 0; i < 200; i++ {
				src := int32(rng.Intn(n))
				dst := int32(rng.Intn(n))
				if src == dst {
					continue
				}
				want, err := s6.Roundtrip(src, dst)
				if err != nil {
					errs <- err
					return
				}
				got, err := sim.Roundtrip(dep, src, dst, 0)
				if err != nil {
					errs <- err
					return
				}
				if want.Weight() != got.Weight() || want.Hops() != got.Hops() {
					errs <- fmt.Errorf("router path diverges for %d->%d", src, dst)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDeploymentServesTraffic drives the concurrent traffic engine over
// a wire-restored Deployment and over the monolithic scheme with the
// same seeds, and demands identical serving results — the route-identity
// acceptance under concurrency (run with -race in CI).
func TestDeploymentServesTraffic(t *testing.T) {
	const n = 64
	sys := newTestSystem(t, 4, n)
	s6, err := sys.Build(StretchSix, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalScheme(s6)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := UnmarshalScheme(blob)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrafficConfig{
		Workers:  4,
		Packets:  20000,
		Seed:     11,
		Workload: TrafficWorkload{Kind: WorkloadZipf},
	}
	want, err := sys.ServeTraffic(s6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.ServeTraffic(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Everything but Elapsed is a pure function of (seed, workers,
	// workload, packets) — and of the plane's routes.
	want.Elapsed, got.Elapsed = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("deployment serving diverges from monolithic plane:\nwant %+v\ngot  %+v", want, got)
	}
}
