package rtroute

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestNamedSystemEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 32
	g := RandomSC(n, 4*n, 6, rng)
	fullNames := make([]string, n)
	for i := range fullNames {
		fullNames[i] = fmt.Sprintf("peer-%04x", rng.Uint32()&0xffff|uint32(i)<<16)
	}
	ns, err := NewNamedSystem(g, fullNames, rng)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := ns.Sys.BuildStretchSix(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 3 {
		for j := 1; j < n; j += 5 {
			if i == j {
				continue
			}
			tr, err := ns.Roundtrip(sch, fullNames[i], fullNames[j])
			if err != nil {
				t.Fatalf("roundtrip %s -> %s: %v", fullNames[i], fullNames[j], err)
			}
			st, err := ns.Stretch(fullNames[i], fullNames[j], tr)
			if err != nil {
				t.Fatal(err)
			}
			if st < 1 || st > 6 {
				t.Fatalf("stretch %.3f outside [1,6] for %s -> %s", st, fullNames[i], fullNames[j])
			}
		}
	}
}

func TestNamedSystemNameResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomSC(10, 40, 3, rng)
	fullNames := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	ns, err := NewNamedSystem(g, fullNames, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, full := range fullNames {
		nm, err := ns.TINNName(full)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ns.FullName(nm)
		if err != nil {
			t.Fatal(err)
		}
		if back != full {
			t.Fatalf("round-trip resolution %q -> %d -> %q", full, nm, back)
		}
	}
	if _, err := ns.TINNName("nobody"); err == nil {
		t.Fatal("unknown name resolved")
	}
	if _, err := ns.FullName(99); err == nil {
		t.Fatal("out-of-range TINN name resolved")
	}
}

func TestNamedSystemValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomSC(4, 8, 2, rng)
	if _, err := NewNamedSystem(g, []string{"x", "y"}, rng); err == nil {
		t.Fatal("name-count mismatch accepted")
	}
	if _, err := NewNamedSystem(g, []string{"x", "y", "x", "z"}, rng); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestNamedSystemDeterministic(t *testing.T) {
	g := func() *Graph {
		rng := rand.New(rand.NewSource(4))
		return RandomSC(12, 48, 4, rng)
	}
	fullNames := make([]string, 12)
	for i := range fullNames {
		fullNames[i] = fmt.Sprintf("node-%d", i*7)
	}
	a, err := NewNamedSystem(g(), fullNames, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNamedSystem(g(), fullNames, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, full := range fullNames {
		na, _ := a.TINNName(full)
		nb, _ := b.TINNName(full)
		if na != nb {
			t.Fatalf("nondeterministic TINN assignment for %q: %d vs %d", full, na, nb)
		}
	}
}
