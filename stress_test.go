package rtroute

import (
	"math/rand"
	"testing"
)

// TestStretchSixAtScale builds the §2 scheme on a 384-node network with
// parallel preprocessing and checks the bound over a large pair sample —
// the "laptop-scale" full-size run of the reproduction.
func TestStretchSixAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	n := 384
	rng := rand.New(rand.NewSource(99))
	g := RandomSC(n, 5*n, 16, rng)
	m := AllPairsParallel(g, 0)
	naming := RandomNaming(n, rng)
	sys := &System{Graph: g, Metric: m, Naming: naming}
	sch, err := sys.BuildStretchSix(7)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := MeasureScheme(sys, sch, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 6 {
		t.Fatalf("stretch-6 violated at scale: %.3f", stats.Max)
	}
	if stats.Mean < 1 || stats.Mean > 3 {
		t.Fatalf("implausible mean stretch %.3f at scale", stats.Mean)
	}
	// Table sublinearity at scale: average table well under n words.
	if sch.AvgTableWords() > float64(n)*20 {
		t.Fatalf("avg table %.0f words suspiciously large for n=%d", sch.AvgTableWords(), n)
	}
	t.Logf("n=%d: max stretch %.3f, mean %.3f, avg table %.0f words",
		n, stats.Max, stats.Mean, sch.AvgTableWords())
}

// TestAllSchemesAtModerateScale runs every scheme at n=160 over sampled
// pairs, asserting bounds — broader than the unit suites, smaller than
// the scale test.
func TestAllSchemesAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale test skipped in -short")
	}
	n := 160
	rng := rand.New(rand.NewSource(123))
	g := RandomSC(n, 5*n, 10, rng)
	sys, err := NewSystem(g, RandomNaming(n, rng))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name  string
		bound float64
		build func() (Scheme, error)
	}{
		{"stretch6", 6, func() (Scheme, error) { return sys.BuildStretchSix(1) }},
		{"exstretch-k2", 36, func() (Scheme, error) { return sys.BuildExStretch(2, 2) }},
		{"exstretch-k3", 7 * 10 * 4, func() (Scheme, error) { return sys.BuildExStretch(3, 3) }},
		{"poly-k2", 36, func() (Scheme, error) { return sys.BuildPolynomial(2) }},
		{"poly-k3", 80, func() (Scheme, error) { return sys.BuildPolynomial(3) }},
	}
	for _, c := range checks {
		sch, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		stats, err := MeasureScheme(sys, sch, 6000, 5)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if stats.Max > c.bound {
			t.Fatalf("%s: measured %.3f > bound %.0f", c.name, stats.Max, c.bound)
		}
		t.Logf("%s: max %.3f mean %.3f (bound %.0f), avg table %.0f words",
			c.name, stats.Max, stats.Mean, c.bound, sch.AvgTableWords())
	}
}
