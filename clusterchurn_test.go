package rtroute

import (
	"math/rand"
	"sync"
	"testing"

	"rtroute/internal/cluster"
)

// TestClusterChurnMatchesSequential is the tentpole certification: an
// 8-shard fabric absorbs seeded churn while serving — events ride the
// wire as churn frames, every shard repairs its owned slice behind its
// epoch fence concurrently with roundtrips in flight — and after every
// batch each shard's owned tables are bit-identical to a reference
// replica (and, transitively, to a from-scratch build), the accounting
// identity holds exactly (zero hung roundtrips), and the post-repair
// stable window's hop and weight totals equal a sequential replay on
// the reference plane. All five plane kinds, under -race.
func TestClusterChurnMatchesSequential(t *testing.T) {
	kinds := []struct {
		name string
		kind SchemeKind
	}{
		{"stretch6", StretchSix},
		{"exstretch", ExStretch},
		{"poly", Polynomial},
		{"rtz", RTZStretch3},
		{"hop", HopSubstrate},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			const n = 40
			sys := churnSystem(t, n, 0xE19+int64(tc.kind))
			res, err := RunChurnCluster(sys, ChurnClusterConfig{
				Kind:           tc.kind,
				Build:          BuildConfig{Seed: 7},
				Shards:         8,
				Workers:        2,
				ChurnSeed:      901 + int64(tc.kind),
				Batches:        3,
				EventsPerBatch: 3,
				FirePackets:    300,
				StablePackets:  300,
				InFlight:       64,
				Certify:        true,
			})
			if err != nil {
				t.Fatalf("RunChurnCluster: %v", err)
			}
			if res.Issued != res.Served+res.Drops+res.Misroutes {
				t.Fatalf("accounting identity broken: issued %d != served %d + drops %d + misroutes %d",
					res.Issued, res.Served, res.Drops, res.Misroutes)
			}
			if want := int64(8 * 3); res.Repairs != want {
				t.Fatalf("repairs = %d, want %d (shards x batches)", res.Repairs, want)
			}
			if !res.Certified {
				t.Fatalf("result not certified")
			}
			if len(res.BatchRows) != 3 {
				t.Fatalf("%d batch rows, want 3", len(res.BatchRows))
			}
			for _, row := range res.BatchRows {
				if row.FireIssued != row.FireServed+row.FireDrops+row.FireMisroutes {
					t.Fatalf("batch %d: fire accounting broken: %d != %d+%d+%d",
						row.Batch, row.FireIssued, row.FireServed, row.FireDrops, row.FireMisroutes)
				}
				if row.Dirty == 0 {
					t.Fatalf("batch %d: empty dirty set for %d events", row.Batch, row.Events)
				}
			}
			t.Logf("\n%s", res.Format())
		})
	}
}

// ccReorderEndpoint is the delivery adversary from the PR 6
// certification, re-aimed at the churn path: it shuffles every batch it
// hands to the shard and randomly holds a suffix back for a later call,
// so churn frames overtake and trail roundtrip frames far more
// aggressively than any real transport. Held frames are always returned
// by the next Recv or TryRecv before the underlying blocking receive is
// consulted, so no worker ever blocks on held traffic.
type ccReorderEndpoint struct {
	cluster.Transport
	mu   sync.Mutex
	rng  *rand.Rand
	held []cluster.InFrame
}

func (r *ccReorderEndpoint) takeHeld() ([]cluster.InFrame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.held) == 0 {
		return nil, false
	}
	out := r.held
	r.held = nil
	return out, true
}

func (r *ccReorderEndpoint) scramble(frames []cluster.InFrame) []cluster.InFrame {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	if len(frames) > 1 {
		keep := 1 + r.rng.Intn(len(frames))
		r.held = append(r.held, frames[keep:]...)
		frames = frames[:keep]
	}
	return frames
}

func (r *ccReorderEndpoint) Recv() ([]cluster.InFrame, error) {
	if out, ok := r.takeHeld(); ok {
		return out, nil
	}
	frames, err := r.Transport.Recv()
	if err != nil {
		return nil, err
	}
	for len(frames) < 1024 {
		more, ok, err := r.Transport.TryRecv()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		frames = append(frames, more...)
	}
	return r.scramble(frames), nil
}

func (r *ccReorderEndpoint) TryRecv() ([]cluster.InFrame, bool, error) {
	if out, ok := r.takeHeld(); ok {
		return out, true, nil
	}
	frames, ok, err := r.Transport.TryRecv()
	if err != nil || !ok {
		return nil, ok, err
	}
	return r.scramble(frames), true, nil
}

// TestClusterChurnUnderReorderingAdversary re-runs the churn
// certification with the adversary spliced into every shard's endpoint:
// aggressive reordering of churn frames against in-flight roundtrips
// must not change a single certified outcome, because repairs are
// fenced per shard and applied in sequence order regardless of delivery
// order.
func TestClusterChurnUnderReorderingAdversary(t *testing.T) {
	kinds := []struct {
		name string
		kind SchemeKind
	}{
		{"stretch6", StretchSix},
		{"rtz", RTZStretch3},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			const n = 40
			sys := churnSystem(t, n, 0xADE+int64(tc.kind))
			res, err := RunChurnCluster(sys, ChurnClusterConfig{
				Kind:           tc.kind,
				Build:          BuildConfig{Seed: 11},
				Shards:         8,
				Workers:        2,
				ChurnSeed:      333 + int64(tc.kind),
				Batches:        3,
				EventsPerBatch: 3,
				FirePackets:    300,
				StablePackets:  300,
				InFlight:       64,
				Certify:        true,
				wrapEndpoint: func(shard int, tr cluster.Transport) cluster.Transport {
					return &ccReorderEndpoint{Transport: tr, rng: rand.New(rand.NewSource(int64(100 + shard)))}
				},
			})
			if err != nil {
				t.Fatalf("RunChurnCluster under reordering: %v", err)
			}
			if res.Issued != res.Served+res.Drops+res.Misroutes {
				t.Fatalf("accounting identity broken under reordering: issued %d != served %d + drops %d + misroutes %d",
					res.Issued, res.Served, res.Drops, res.Misroutes)
			}
			if want := int64(8 * 3); res.Repairs != want {
				t.Fatalf("repairs = %d, want %d", res.Repairs, want)
			}
		})
	}
}
