package rtroute

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtroute/internal/churn"
	"rtroute/internal/cluster"
	"rtroute/internal/core"
	"rtroute/internal/sim"
	"rtroute/internal/traffic"
	"rtroute/internal/wire"
)

// ChurnClusterConfig parameterizes one RunChurnCluster experiment:
// seeded churn absorbed by a serving shard fabric, with online per-shard
// repair behind epoch fences and bit-identity certification against a
// reference replica after every event batch.
type ChurnClusterConfig struct {
	// Kind selects the maintained scheme (default StretchSix).
	Kind SchemeKind
	// Build is the scheme construction config; every shard replica and
	// the reference build from the same seed, so their planes start
	// bit-identical.
	Build BuildConfig
	// Shards is the fabric width (default 8).
	Shards int
	// Workers is each shard's serving pool size (default 1).
	Workers int
	// Placement selects the node partition (default Contiguous).
	Placement PlacementPolicy
	// ChurnSeed seeds the event model (independent of Build.Seed).
	ChurnSeed int64
	// Rate is the Poisson clock intensity the event timestamps advance
	// with (default 1); it paces the flap damper, not the experiment.
	Rate float64
	// Batches is the number of churn->repair->certify rounds (default 4).
	Batches int
	// EventsPerBatch is the number of topology events per batch
	// (default 4).
	EventsPerBatch int
	// FirePackets is the number of roundtrips issued concurrently with
	// each batch's repair — the under-fire serving window (default 2000).
	FirePackets int64
	// StablePackets is the post-repair serving quota per batch, replayed
	// sequentially on the reference plane for exact-totals comparison
	// (default 2000).
	StablePackets int64
	// Mix weights the event kinds (zero value = DefaultChurnMix).
	Mix ChurnMix
	// MaxWeight bounds weight-change draws (default 64).
	MaxWeight Dist
	// MinWeight, when > 0, floors weight-change draws.
	MinWeight Dist
	// Damper tunes the per-link flap damper (zero value = defaults).
	Damper DamperOptions
	// MaxHops bounds each leg (0 = sim's default 4n budget).
	MaxHops int
	// InFlight caps concurrently live roundtrips (default 512).
	InFlight int
	// Batch bounds one mailbox dequeue (default 64).
	Batch int
	// Workload selects the pair distribution (zero value = uniform).
	Workload TrafficWorkload
	// Certify additionally certifies the reference replica against a
	// from-scratch build after every batch, making the per-shard slice
	// comparison transitively a from-scratch certification. Costs a full
	// build per batch.
	Certify bool
	// Sink, when non-nil, attaches the telemetry plane; its shape must
	// match Shards x Workers (cluster.Config.SinkShape). The driver
	// registers churn_cluster_* gauges on it.
	Sink *TelemetrySink
	// wrapEndpoint, when non-nil, wraps each shard's transport endpoint
	// — the test hook the reordering-adversary certification uses to
	// shuffle deliveries, churn frames included.
	wrapEndpoint func(shard int, tr cluster.Transport) cluster.Transport
}

func (cfg *ChurnClusterConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 4
	}
	if cfg.EventsPerBatch <= 0 {
		cfg.EventsPerBatch = 4
	}
	if cfg.FirePackets <= 0 {
		cfg.FirePackets = 2000
	}
	if cfg.StablePackets <= 0 {
		cfg.StablePackets = 2000
	}
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 64
	}
	if cfg.InFlight <= 0 {
		cfg.InFlight = 512
	}
	if cfg.Mix == (ChurnMix{}) {
		cfg.Mix = DefaultChurnMix
	}
	if cfg.Build.K == 0 {
		cfg.Build.K = 2
	}
}

// ChurnClusterBatch accounts one churn->repair->certify round.
type ChurnClusterBatch struct {
	Batch         int     `json:"batch"`
	Events        int     `json:"events"`
	Dirty         int     `json:"dirty"`
	DirtyFrac     float64 `json:"dirty_frac"`
	FireIssued    int64   `json:"fire_issued"`
	FireServed    int64   `json:"fire_served"`
	FireDrops     int64   `json:"fire_drops"`
	FireMisroutes int64   `json:"fire_misroutes"`
	FireNs        int64   `json:"fire_ns"`
	RepairNsMean  int64   `json:"repair_ns_mean"`
	RepairNsMax   int64   `json:"repair_ns_max"`
	CertifyNs     int64   `json:"certify_ns"`
	StableIssued  int64   `json:"stable_issued"`
	StableNs      int64   `json:"stable_ns"`
}

// ChurnClusterResult aggregates one RunChurnCluster experiment (E19).
type ChurnClusterResult struct {
	Kind      string              `json:"kind"`
	Nodes     int                 `json:"nodes"`
	Shards    int                 `json:"shards"`
	Workers   int                 `json:"workers"`
	Placement string              `json:"placement"`
	BatchRows []ChurnClusterBatch `json:"batches"`
	// Accounting identity: Issued == Served + Drops + Misroutes, i.e.
	// zero hung roundtrips. RunChurnCluster fails rather than return a
	// result violating it.
	Issued    int64 `json:"issued"`
	Served    int64 `json:"served"`
	Drops     int64 `json:"drops"`
	Misroutes int64 `json:"misroutes"`
	// Repairs counts per-shard repair passes (Shards x Batches).
	Repairs      int64 `json:"repairs"`
	RepairNsMean int64 `json:"repair_ns_mean"`
	RepairNsMax  int64 `json:"repair_ns_max"`
	// FireRTPerSec is serving throughput while repairs run; StableRTPerSec
	// the post-repair baseline — the during/off-repair pair.
	FireRTPerSec   float64 `json:"fire_rt_per_sec"`
	StableRTPerSec float64 `json:"stable_rt_per_sec"`
	CrossShard     int64   `json:"cross_shard_frames"`
	Certified      bool    `json:"certified"`
	FromScratch    bool    `json:"from_scratch_certified"`
	ElapsedNs      int64   `json:"elapsed_ns"`
}

type ccPair struct{ src, dst int32 }

// ccReplica is one shard's private copy of the world: its own graph
// clone, maintained plane, churn overlay and deployment. Nothing below
// the wire is shared between shards, so a repair is a genuinely local
// act — exactly the regime the paper's per-node tables are for.
type ccReplica struct {
	m    *Maintained
	ov   *churn.Overlay
	dep  *core.Deployment
	view *core.ShardView
	sh   *cluster.Shard
	seen []bool // dirty-union scratch, repairs are serialized per shard
}

type ccRun struct {
	cfg    ChurnClusterConfig
	n      int
	refM   *Maintained
	refOv  *churn.Overlay
	refDep *core.Deployment
	model  *churn.Model
	place  *cluster.Placement
	nodeOf []NodeID // name -> node, churn-invariant (the paper's TINNs)
	reps   []*ccReplica
	bus    *cluster.ChanBus
	window *cluster.Window
	wake   chan struct{}

	issued       int64 // driver-thread only
	rt           uint64
	served       atomic.Int64
	drops        atomic.Int64
	misroutes    atomic.Int64
	servedHops   atomic.Int64
	servedWeight atomic.Int64
	acks         atomic.Int64
	dirtyBits    atomic.Uint64 // Float64bits of the last batch's dirty fraction

	mu       sync.Mutex
	firstErr error
}

func (r *ccRun) wakeup() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *ccRun) abort(err error) {
	r.mu.Lock()
	if r.firstErr == nil && err != nil {
		r.firstErr = err
	}
	r.mu.Unlock()
	r.bus.Close()
	r.wakeup()
}

func (r *ccRun) err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.firstErr
}

// RunChurnCluster drives seeded churn through a serving shard fabric:
// every shard holds a full replica of the scheme built from the same
// seed (bit-identical planes), and each event batch is broadcast as a
// churn frame. A shard applies the batch to its own overlay and rebuilds
// only the intersection of the affected set with its owned nodes —
// concurrently with serving, behind its epoch fence, so in-flight
// roundtrips complete on stale-but-live routes or fail typed, never
// hang. After every batch the run certifies each shard's owned table
// slice bit-identical to a reference replica repaired the classic way
// (and, with Certify, to a from-scratch build), then serves a stable
// window whose hop and weight totals must match a sequential replay on
// the reference plane exactly.
func RunChurnCluster(sys *System, cfg ChurnClusterConfig) (*ChurnClusterResult, error) {
	cfg.fill()
	n := sys.Graph.N()

	// Reference replica: the certification oracle and sequential-replay
	// plane. It sees the same events and repairs with the full affected
	// set (no ownership filter).
	refM, err := sys.BuildMaintained(cfg.Kind, func(c *BuildConfig) { *c = cfg.Build })
	if err != nil {
		return nil, err
	}
	refOv, err := churn.NewOverlay(sys.Graph, churn.NewDamper(cfg.Damper))
	if err != nil {
		return nil, err
	}
	model := churn.NewModel(refOv, cfg.ChurnSeed, cfg.Rate, cfg.Mix, cfg.MaxWeight)
	if cfg.MinWeight > 0 {
		model.SetMinWeight(cfg.MinWeight)
	}
	refDep := core.NewDeployment(refM.Plane(), cfg.Kind)
	place, err := cluster.NewPlacement(refDep, cfg.Shards, cfg.Placement)
	if err != nil {
		return nil, err
	}

	r := &ccRun{
		cfg: cfg, n: n,
		refM: refM, refOv: refOv, refDep: refDep, model: model, place: place,
		bus:    cluster.NewChanBus(cfg.Shards, cfg.InFlight+cfg.Shards),
		window: cluster.NewWindow(cfg.InFlight),
		wake:   make(chan struct{}, 1),
	}
	// Snapshot the name->node map: topology-independent names never move
	// under churn, but reading it through refDep would race with the
	// driver rebinding the reference plane mid-fire.
	r.nodeOf = make([]NodeID, n)
	for name := int32(0); name < int32(n); name++ {
		r.nodeOf[name] = refDep.NodeOf(name)
	}

	// Per-shard replicas: clone the pristine graph, rebuild the same
	// plane from the same seed, wrap a private overlay. Built before any
	// churn so every replica starts from the reference's exact state.
	r.reps = make([]*ccReplica, cfg.Shards)
	for i := range r.reps {
		gi := sys.Graph.Clone()
		si, err := NewSystemWith(gi, sys.Naming, SystemConfig{Metric: MetricLazy})
		if err != nil {
			return nil, fmt.Errorf("rtroute: shard %d replica: %w", i, err)
		}
		mi, err := si.BuildMaintained(cfg.Kind, func(c *BuildConfig) { *c = cfg.Build })
		if err != nil {
			return nil, fmt.Errorf("rtroute: shard %d replica: %w", i, err)
		}
		ovi, err := churn.NewOverlay(gi, churn.NewDamper(cfg.Damper))
		if err != nil {
			return nil, fmt.Errorf("rtroute: shard %d overlay: %w", i, err)
		}
		depi := core.NewDeployment(mi.Plane(), cfg.Kind)
		viewi, err := depi.ShardView(i, place.Owner)
		if err != nil {
			return nil, fmt.Errorf("rtroute: shard %d view: %w", i, err)
		}
		rep := &ccReplica{m: mi, ov: ovi, dep: depi, view: viewi, seen: make([]bool, n)}
		tr := cluster.Transport(r.bus.Endpoint(i))
		if cfg.wrapEndpoint != nil {
			tr = cfg.wrapEndpoint(i, tr)
		}
		rep.sh = cluster.NewShard(viewi, place, tr, cluster.Options{
			Workers: cfg.Workers, Batch: cfg.Batch, MaxHops: cfg.MaxHops,
			Strict: true,
			OnDone: func(f *wire.Frame) {
				r.servedHops.Add(int64(f.Out.Hops) + int64(f.Back.Hops))
				r.servedWeight.Add(int64(f.Out.Weight) + int64(f.Back.Weight))
				r.served.Add(1)
				r.window.Put(1)
				r.wakeup()
			},
			OnLost: func(f *wire.Frame, reason byte) {
				if reason == wire.DropMisroute {
					r.misroutes.Add(1)
				} else {
					r.drops.Add(1)
				}
				r.window.Put(1)
				r.wakeup()
			},
			Repair: r.repairFor(rep),
			OnRepaired: func(seq uint64) {
				r.acks.Add(1)
				r.wakeup()
			},
			Sink: cfg.Sink, SinkShard: i,
		})
		r.reps[i] = rep
	}
	r.registerGauges()

	wl, err := traffic.NewWorkload(cfg.Workload, n, cfg.Build.Seed^cfg.ChurnSeed)
	if err != nil {
		return nil, err
	}
	gen := wl.Generator(0)

	var wg sync.WaitGroup
	for _, rep := range r.reps {
		wg.Add(1)
		go func(sh *cluster.Shard) {
			defer wg.Done()
			if err := sh.Serve(); err != nil {
				r.abort(err)
			}
		}(rep.sh)
	}

	res := &ChurnClusterResult{
		Kind: cfg.Kind.String(), Nodes: n, Shards: cfg.Shards, Workers: cfg.Workers,
		Placement: string(place.Policy), FromScratch: cfg.Certify,
	}
	start := time.Now()
	runErr := r.drive(gen, res)
	r.bus.Close()
	wg.Wait()
	if runErr == nil {
		runErr = r.err()
	}
	if runErr != nil {
		return nil, runErr
	}
	res.ElapsedNs = int64(time.Since(start))
	res.Issued = r.issued
	res.Served = r.served.Load()
	res.Drops = r.drops.Load()
	res.Misroutes = r.misroutes.Load()
	if res.Served+res.Drops+res.Misroutes != res.Issued {
		return nil, fmt.Errorf("rtroute: accounting identity broken: issued %d != served %d + drops %d + misroutes %d",
			res.Issued, res.Served, res.Drops, res.Misroutes)
	}
	var fireNs, stableNs, fireIssued, stableIssued int64
	for _, row := range res.BatchRows {
		fireNs += row.FireNs
		stableNs += row.StableNs
		fireIssued += row.FireIssued
		stableIssued += row.StableIssued
		if row.RepairNsMax > res.RepairNsMax {
			res.RepairNsMax = row.RepairNsMax
		}
	}
	if fireNs > 0 {
		res.FireRTPerSec = float64(fireIssued) / (float64(fireNs) / 1e9)
	}
	if stableNs > 0 {
		res.StableRTPerSec = float64(stableIssued) / (float64(stableNs) / 1e9)
	}
	var repairNanos int64
	for _, rep := range r.reps {
		_, _, reps, nanos := rep.sh.ChurnStats()
		res.Repairs += reps
		repairNanos += nanos
		st := rep.sh.Stats()
		res.CrossShard += st.FramesOut
	}
	if res.Repairs > 0 {
		res.RepairNsMean = repairNanos / res.Repairs
	}
	res.Certified = true
	return res, nil
}

// repairFor builds shard rep's Repair hook: apply the batch to the
// shard's private overlay, rebuild the affected set intersected with
// the shard's owned nodes, and rebind the deployment to the (possibly
// swapped) plane. The shard calls it under its epoch fence with batches
// in sequence order.
func (r *ccRun) repairFor(rep *ccReplica) func(uint64, []churn.Event) error {
	return func(seq uint64, events []churn.Event) error {
		var dirty []NodeID
		add := func(ds []NodeID) {
			for _, d := range ds {
				if !rep.seen[d] {
					rep.seen[d] = true
					dirty = append(dirty, d)
				}
			}
		}
		var at float64
		for _, ev := range events {
			ds, err := rep.ov.Apply(ev)
			if err != nil {
				return fmt.Errorf("cluster churn batch %d: %w", seq, err)
			}
			add(ds)
			at = ev.At
		}
		released, err := rep.ov.Advance(at)
		if err != nil {
			return fmt.Errorf("cluster churn batch %d: %w", seq, err)
		}
		add(released)
		for _, d := range dirty {
			rep.seen[d] = false
		}
		churn.SortNodeIDs(dirty)
		if _, err := rep.m.RebuildNodesFor(dirty, rep.view.Owns); err != nil {
			return fmt.Errorf("cluster churn batch %d: %w", seq, err)
		}
		rep.dep.Rebind(rep.m.Plane())
		return nil
	}
}

func (r *ccRun) registerGauges() {
	sink := r.cfg.Sink
	sink.RegisterGauge("churn_cluster_drops_total", func() float64 { return float64(r.drops.Load()) })
	sink.RegisterGauge("churn_cluster_misroutes_total", func() float64 { return float64(r.misroutes.Load()) })
	sink.RegisterGauge("churn_cluster_repairs_total", func() float64 { return float64(r.acks.Load()) })
	sink.RegisterGauge("churn_cluster_dirty_frac", func() float64 { return math.Float64frombits(r.dirtyBits.Load()) })
	sink.RegisterGauge("churn_cluster_repair_ns_mean", func() float64 {
		var count, nanos int64
		for _, rep := range r.reps {
			_, _, c, ns := rep.sh.ChurnStats()
			count += c
			nanos += ns
		}
		if count == 0 {
			return 0
		}
		return float64(nanos) / float64(count)
	})
}

// drive runs the batch loop: draw events -> fire (serve while the
// fabric repairs) -> certify -> stable window with sequential-replay
// totals.
func (r *ccRun) drive(gen traffic.Generator, res *ChurnClusterResult) error {
	prevRepairs := make([]int64, r.cfg.Shards)
	prevNanos := make([]int64, r.cfg.Shards)
	for b := 0; b < r.cfg.Batches; b++ {
		seq := uint64(b + 1)
		row := ChurnClusterBatch{Batch: b}

		// Draw the batch from the model and apply it to the reference
		// overlay; the same events ride the wire to every shard.
		events := make([]churn.Event, 0, r.cfg.EventsPerBatch)
		var dirty []NodeID
		seen := make([]bool, r.n)
		add := func(ds []NodeID) {
			for _, d := range ds {
				if !seen[d] {
					seen[d] = true
					dirty = append(dirty, d)
				}
			}
		}
		var at float64
		for i := 0; i < r.cfg.EventsPerBatch; i++ {
			ev := r.model.Next()
			events = append(events, ev)
			ds, err := r.refOv.Apply(ev)
			if err != nil {
				return fmt.Errorf("rtroute: batch %d: %w", b, err)
			}
			add(ds)
			at = ev.At
		}
		released, err := r.refOv.Advance(at)
		if err != nil {
			return fmt.Errorf("rtroute: batch %d: %w", b, err)
		}
		add(released)
		churn.SortNodeIDs(dirty)
		row.Events = len(events)
		row.Dirty = len(dirty)
		row.DirtyFrac = float64(len(dirty)) / float64(r.n)
		r.dirtyBits.Store(math.Float64bits(row.DirtyFrac))

		// Fire phase: inject a serving window concurrently with the churn
		// broadcast and the repairs it triggers. Pairs avoid endpoints the
		// events killed; everything else is fair game mid-repair.
		firePairs := r.drawPairs(gen, r.cfg.FirePackets)
		served0, drops0, miss0 := r.served.Load(), r.drops.Load(), r.misroutes.Load()
		ackTarget := int64((b + 1) * r.cfg.Shards)
		fire0 := time.Now()
		injected := make(chan error, 1)
		go func() { injected <- r.issue(firePairs) }()
		for i := 0; i < r.cfg.Shards; i++ {
			// Each shard gets its own buffer: the transport owns delivered
			// bytes (shards recycle them into their frame pools).
			if err := r.bus.Send(i, wire.AppendChurnFrame(nil, seq, events)); err != nil {
				<-injected
				return fmt.Errorf("rtroute: churn broadcast: %w", err)
			}
		}
		// The reference repairs on the driver thread while the fabric
		// serves under fire.
		if _, err := r.refM.RebuildNodes(dirty); err != nil {
			<-injected
			return fmt.Errorf("rtroute: reference repair: %w", err)
		}
		r.refDep.Rebind(r.refM.Plane())
		if err := <-injected; err != nil {
			return err
		}
		r.issued += int64(len(firePairs))
		if err := r.waitAccounted(r.issued, ackTarget, fmt.Sprintf("batch %d fire", b)); err != nil {
			return err
		}
		row.FireNs = int64(time.Since(fire0))
		row.FireIssued = int64(len(firePairs))
		row.FireServed = r.served.Load() - served0
		row.FireDrops = r.drops.Load() - drops0
		row.FireMisroutes = r.misroutes.Load() - miss0
		var repairSum, repairMax int64
		for i, rep := range r.reps {
			_, _, reps, nanos := rep.sh.ChurnStats()
			d := nanos - prevNanos[i]
			if reps != prevRepairs[i]+1 {
				return fmt.Errorf("rtroute: batch %d: shard %d ran %d repairs, expected %d", b, i, reps, prevRepairs[i]+1)
			}
			prevRepairs[i], prevNanos[i] = reps, nanos
			repairSum += d
			if d > repairMax {
				repairMax = d
			}
		}
		row.RepairNsMean = repairSum / int64(r.cfg.Shards)
		row.RepairNsMax = repairMax

		// Certification: every shard's owned slice of the plane must be
		// bit-identical to the reference replica — and the reference, with
		// Certify, to a from-scratch build on the mutated graph.
		cert0 := time.Now()
		if r.cfg.Certify {
			if err := r.refM.Certify(); err != nil {
				return fmt.Errorf("rtroute: batch %d: reference vs from-scratch: %w", b, err)
			}
		}
		if err := r.certifySlices(b); err != nil {
			return err
		}
		row.CertifyNs = int64(time.Since(cert0))

		// Stable phase: the repaired fabric serves a quota that must be
		// drop-free and total-identical to a sequential replay on the
		// reference plane.
		stablePairs := r.drawPairs(gen, r.cfg.StablePackets)
		hops0, weight0 := r.servedHops.Load(), r.servedWeight.Load()
		drops0, miss0 = r.drops.Load(), r.misroutes.Load()
		stable0 := time.Now()
		if err := r.issue(stablePairs); err != nil {
			return err
		}
		r.issued += int64(len(stablePairs))
		if err := r.waitAccounted(r.issued, ackTarget, fmt.Sprintf("batch %d stable", b)); err != nil {
			return err
		}
		row.StableNs = int64(time.Since(stable0))
		row.StableIssued = int64(len(stablePairs))
		if d, m := r.drops.Load()-drops0, r.misroutes.Load()-miss0; d != 0 || m != 0 {
			return fmt.Errorf("rtroute: batch %d: repaired cluster dropped %d and misrouted %d roundtrips", b, d, m)
		}
		var refHops, refWeight int64
		var hdr sim.Header
		for _, p := range stablePairs {
			out, back, h, err := sim.RoundtripFlightReusing(r.refM.Plane(), hdr, p.src, p.dst, r.cfg.MaxHops)
			if err != nil {
				return fmt.Errorf("rtroute: batch %d: sequential replay %d->%d: %w", b, p.src, p.dst, err)
			}
			hdr = h
			refHops += int64(out.Hops + back.Hops)
			refWeight += int64(out.Weight) + int64(back.Weight)
		}
		if gotH, gotW := r.servedHops.Load()-hops0, r.servedWeight.Load()-weight0; gotH != refHops || gotW != refWeight {
			return fmt.Errorf("rtroute: batch %d: cluster served hops=%d weight=%d, sequential replay hops=%d weight=%d",
				b, gotH, gotW, refHops, refWeight)
		}
		res.BatchRows = append(res.BatchRows, row)
	}
	return nil
}

// drawPairs draws count pairs, resampling (bounded) endpoints the churn
// has taken down — a dead endpoint can never be served, which would
// break the accounting identity's usefulness as a hang detector.
func (r *ccRun) drawPairs(gen traffic.Generator, count int64) []ccPair {
	pairs := make([]ccPair, 0, count)
	for i := int64(0); i < count; i++ {
		src, dst := gen.Next()
		for tries := 0; tries < 64 && (r.refOv.NodeFailed(r.nodeOf[src]) || r.refOv.NodeFailed(r.nodeOf[dst])); tries++ {
			src, dst = gen.Next()
		}
		pairs = append(pairs, ccPair{src, dst})
	}
	return pairs
}

// issue injects the pairs through the window, grouped per owning shard
// into batched inject frames — the same discipline cluster.Run's
// injectors use.
func (r *ccRun) issue(pairs []ccPair) error {
	byOwner := make([][]wire.InjectEntry, r.cfg.Shards)
	idx := 0
	for idx < len(pairs) {
		want := len(pairs) - idx
		if want > 256 {
			want = 256
		}
		got := r.window.Take(want, r.bus.Done())
		if got == 0 {
			if err := r.err(); err != nil {
				return err
			}
			return fmt.Errorf("rtroute: cluster closed while injecting")
		}
		for k := 0; k < got; k++ {
			p := pairs[idx]
			idx++
			r.rt++
			owner := r.place.Shard(r.nodeOf[p.src])
			byOwner[owner] = append(byOwner[owner], wire.InjectEntry{Src: p.src, Dst: p.dst, Rt: r.rt})
		}
		for o := range byOwner {
			if len(byOwner[o]) == 0 {
				continue
			}
			buf := make([]byte, 0, 32+len(byOwner[o])*21)
			data := wire.AppendInjectBatch(buf, wire.HomeLocal, 0, byOwner[o])
			byOwner[o] = byOwner[o][:0]
			if err := r.bus.Send(o, data); err != nil {
				if aerr := r.err(); aerr != nil {
					return aerr
				}
				return fmt.Errorf("rtroute: inject: %w", err)
			}
		}
	}
	return nil
}

// waitAccounted blocks until every issued roundtrip is accounted —
// served, dropped, or misrouted; nothing hung — and every shard has
// acknowledged the batches broadcast so far.
func (r *ccRun) waitAccounted(issued, acks int64, what string) error {
	deadline := time.After(60 * time.Second)
	for {
		got := r.served.Load() + r.drops.Load() + r.misroutes.Load()
		if got > issued {
			return fmt.Errorf("rtroute: %s: over-accounted: %d completions for %d issued", what, got, issued)
		}
		if got == issued && r.acks.Load() >= acks {
			return nil
		}
		if err := r.err(); err != nil {
			return err
		}
		select {
		case <-r.wake:
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			return fmt.Errorf("rtroute: %s: hung roundtrips: issued %d, served %d, drops %d, misroutes %d, repair acks %d/%d",
				what, issued, r.served.Load(), r.drops.Load(), r.misroutes.Load(), r.acks.Load(), acks)
		}
	}
}

// certifySlices compares every shard's owned LocalStates bit for bit
// against the reference replica's decomposition.
func (r *ccRun) certifySlices(batch int) error {
	refShared, refLocals, err := core.Decompose(r.refM.Plane())
	if err != nil {
		return fmt.Errorf("rtroute: batch %d: decompose reference: %w", batch, err)
	}
	for i, rep := range r.reps {
		shared, locals, err := core.Decompose(rep.m.Plane())
		if err != nil {
			return fmt.Errorf("rtroute: batch %d: decompose shard %d: %w", batch, i, err)
		}
		// Compare the O(1) shared parameters and the naming — not the
		// Graph field, whose clones differ in incidental internals (seal
		// caches, adjacency scratch) without affecting routing state.
		if shared.Kind != refShared.Kind || shared.K != refShared.K || shared.Levels != refShared.Levels ||
			shared.ViaSource != refShared.ViaSource || shared.DirectReturn != refShared.DirectReturn ||
			!reflect.DeepEqual(shared.Names, refShared.Names) {
			return fmt.Errorf("rtroute: batch %d: shard %d shared parameters diverge from the reference replica", batch, i)
		}
		if len(locals) != len(refLocals) {
			return fmt.Errorf("rtroute: batch %d: shard %d has %d local states, reference %d", batch, i, len(locals), len(refLocals))
		}
		for v := range locals {
			if r.place.Shard(NodeID(v)) != i {
				continue // foreign tables are deliberately stale
			}
			if !reflect.DeepEqual(locals[v], refLocals[v]) {
				return fmt.Errorf("rtroute: batch %d: shard %d node %d state diverges from the reference replica", batch, i, v)
			}
		}
	}
	return nil
}

// Format renders the result as the E19 cluster-churn report.
func (r *ChurnClusterResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster churn: %s over n=%d, %d shards x %d workers, placement %s, elapsed %v\n",
		r.Kind, r.Nodes, r.Shards, r.Workers, r.Placement, time.Duration(r.ElapsedNs).Round(time.Millisecond))
	fmt.Fprintf(&b, "accounting: issued %d = served %d + drops %d + misroutes %d  (0 hung)\n",
		r.Issued, r.Served, r.Drops, r.Misroutes)
	fmt.Fprintf(&b, "throughput: %.0f rt/s under fire, %.0f rt/s stable  (%.1f%% of stable while repairing)\n",
		r.FireRTPerSec, r.StableRTPerSec, pct(r.FireRTPerSec, r.StableRTPerSec))
	fmt.Fprintf(&b, "repairs: %d (%d shards x %d batches)  latency mean %v  max %v  cross-shard frames %d\n",
		r.Repairs, r.Shards, len(r.BatchRows), time.Duration(r.RepairNsMean).Round(time.Microsecond),
		time.Duration(r.RepairNsMax).Round(time.Microsecond), r.CrossShard)
	switch {
	case r.Certified && r.FromScratch:
		b.WriteString("certified: owned slices bit-identical to the reference replica, reference to from-scratch builds, after every batch\n")
	case r.Certified:
		b.WriteString("certified: owned slices bit-identical to the reference replica after every batch\n")
	}
	fmt.Fprintf(&b, "\n%-5s %6s %6s %7s %9s %9s %9s %11s %11s %9s %9s\n",
		"batch", "events", "dirty", "dirty%", "fired", "drops", "misroutes", "repair-mean", "repair-max", "fire-ms", "stable-ms")
	for _, row := range r.BatchRows {
		fmt.Fprintf(&b, "%-5d %6d %6d %7.2f %9d %9d %9d %11s %11s %9.1f %9.1f\n",
			row.Batch, row.Events, row.Dirty, 100*row.DirtyFrac, row.FireIssued, row.FireDrops, row.FireMisroutes,
			time.Duration(row.RepairNsMean).Round(time.Microsecond), time.Duration(row.RepairNsMax).Round(time.Microsecond),
			float64(row.FireNs)/1e6, float64(row.StableNs)/1e6)
	}
	return b.String()
}

func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
