module rtroute

go 1.24
