// Traffic-engine acceptance tests (experiment E12 / scaling study S3):
// the facade-level smoke run always executes; the million-packet
// large-scale certification runs under RTROUTE_LARGE=1 (make
// traffic-large), mirroring the lazy-oracle acceptance gate.
package rtroute

import (
	"math/rand"
	"os"
	"runtime"
	"testing"

	"rtroute/internal/eval"
	"rtroute/internal/traffic"
)

func TestServeTrafficFacade(t *testing.T) {
	sys := newTestSystem(t, 5, 64)
	s6, err := sys.BuildStretchSix(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []WorkloadKind{WorkloadUniform, WorkloadZipf, WorkloadHotspot, WorkloadRPC} {
		res, err := sys.ServeTraffic(s6, TrafficConfig{
			Workers: 4, Packets: 2000, Seed: 5,
			Workload: TrafficWorkload{Kind: kind},
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Packets != 2000 {
			t.Fatalf("%s: served %d packets, want 2000", kind, res.Packets)
		}
		if res.Stretch.Max > 6.0000001 {
			t.Fatalf("%s: stretch-6 bound violated: max %v", kind, res.Stretch.Max)
		}
		if res.Stretch.P50 < 1 || res.Stretch.P99 < res.Stretch.P50 {
			t.Fatalf("%s: implausible stretch quantiles %+v", kind, res.Stretch)
		}
		if FormatTraffic(res) == "" {
			t.Fatalf("%s: empty report", kind)
		}
	}
}

func TestServeTrafficSubstratePlanes(t *testing.T) {
	sys := newTestSystem(t, 8, 48)
	rtzPlane, err := sys.BuildRTZPlane(8)
	if err != nil {
		t.Fatal(err)
	}
	hopPlane, err := sys.BuildHopPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	for name, plane := range map[string]ForwardingPlane{"rtz": rtzPlane, "hop": hopPlane} {
		res, err := sys.ServeTraffic(plane, TrafficConfig{
			Workers: 2, Packets: 1000, Seed: 8,
			Workload: TrafficWorkload{Kind: WorkloadZipf},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Packets != 1000 {
			t.Fatalf("%s: served %d packets", name, res.Packets)
		}
	}
}

// TestTrafficLargeScale is the E12 acceptance run: >= 1,000,000 packets
// through a >= 1,000-node StretchSix scheme built over the bounded lazy
// oracle, served across GOMAXPROCS workers, with stretch certified
// against single-threaded sim.Run replays of the same seeded streams.
func TestTrafficLargeScale(t *testing.T) {
	if os.Getenv("RTROUTE_LARGE") == "" {
		t.Skip("set RTROUTE_LARGE=1 (make traffic-large) to run the million-packet acceptance test")
	}
	const (
		n       = 1000
		seed    = 1
		packets = 1_000_000
	)
	rng := rand.New(rand.NewSource(seed))
	g := RandomSC(n, 4*n, 8, rng)
	sys, err := NewSystemWith(g, RandomNaming(n, rng), SystemConfig{Metric: MetricLazy})
	if err != nil {
		t.Fatal(err)
	}
	s6, err := sys.BuildStretchSix(seed)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	spec := TrafficWorkload{Kind: WorkloadZipf, ZipfTheta: 0.9}
	res, err := sys.ServeTraffic(s6, TrafficConfig{
		Workers: workers, Packets: packets, Seed: seed, Workload: spec,
		// Sample every 8th packet for the stretch post-pass: 125k exact
		// measurements, still two lazy-oracle rows per distinct source.
		SampleEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != packets {
		t.Fatalf("served %d packets, want %d", res.Packets, packets)
	}
	if res.Stretch.Max > 6.0000001 {
		t.Fatalf("stretch-6 bound violated under traffic: max %v", res.Stretch.Max)
	}
	t.Logf("n=%d packets=%d workers=%d: %.0f packets/s, %.0f hops/s, stretch p50/p95/p99/max = %.3f/%.3f/%.3f/%.3f (%d sampled)",
		n, packets, workers, res.PacketsPerSec(), res.HopsPerSec(),
		res.Stretch.P50, res.Stretch.P95, res.Stretch.P99, res.Stretch.Max, res.Sampled)

	// Replay every worker's full stream through the single-threaded
	// sim.Run trace path and demand the identical aggregate stats: same
	// hop/weight totals, same sampled stretch multiset. The per-worker
	// quota mirrors the engine's documented partition (base quota with
	// front-loaded remainder).
	wl, err := traffic.NewWorkload(traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var (
		hops, weight int64
		stretches    []float64
	)
	base, rem := int64(packets)/int64(workers), int64(packets)%int64(workers)
	for w := 0; w < workers; w++ {
		quota := base
		if int64(w) < rem {
			quota++
		}
		gen := wl.Generator(w)
		for i := int64(0); i < quota; i++ {
			src, dst := gen.Next()
			tr, err := s6.Roundtrip(src, dst)
			if err != nil {
				t.Fatalf("replay worker %d packet %d: %v", w, i, err)
			}
			hops += int64(tr.Hops())
			weight += int64(tr.Weight())
			if i%8 == 0 {
				stretches = append(stretches, sys.Stretch(src, dst, tr))
			}
		}
	}
	if hops != res.Hops || weight != res.Weight {
		t.Fatalf("replay hops/weight %d/%d, engine %d/%d", hops, weight, res.Hops, res.Weight)
	}
	want := eval.QuantilesOf(stretches)
	if want.P50 != res.Stretch.P50 || want.P95 != res.Stretch.P95 ||
		want.P99 != res.Stretch.P99 || want.Max != res.Stretch.Max {
		t.Fatalf("replay stretch quantiles %+v, engine %+v", want, res.Stretch)
	}
	t.Logf("sequential replay of all %d packets matches the concurrent run exactly", packets)
}
