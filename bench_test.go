// Benchmarks regenerating the paper's figure/table set. Each benchmark
// maps to a row of DESIGN.md's experiment index (E1-E11); routing
// benchmarks report measured stretch as a custom metric next to ns/op so
// the paper's numbers and the implementation's cost appear together.
package rtroute

import (
	"fmt"
	"math/rand"
	"testing"

	"rtroute/internal/benchsuite"
	"rtroute/internal/blocks"
	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/rtmetric"
	"rtroute/internal/rtz"
	"rtroute/internal/traffic"
	"rtroute/internal/tree"
)

// benchSystem builds a shared 128-node system for routing benchmarks.
func benchSystem(b *testing.B, seed int64, n int) *System {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := RandomSC(n, 4*n, 8, rng)
	sys, err := NewSystem(g, RandomNaming(n, rng))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchRoundtrips(b *testing.B, sys *System, sch Scheme) {
	b.Helper()
	n := sys.Graph.N()
	rng := rand.New(rand.NewSource(99))
	type pair struct{ s, d int32 }
	pairs := make([]pair, 1024)
	for i := range pairs {
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		pairs[i] = pair{sys.Naming.Name(int32(u)), sys.Naming.Name(int32(v))}
	}
	var totalStretch float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		tr, err := sch.Roundtrip(p.s, p.d)
		if err != nil {
			b.Fatal(err)
		}
		totalStretch += sys.Stretch(p.s, p.d, tr)
	}
	b.ReportMetric(totalStretch/float64(b.N), "stretch/op")
	b.ReportMetric(float64(sch.MaxTableWords()), "maxTblWords")
}

// BenchmarkFig1RTZBaseline is E1's name-dependent baseline row ([35]).
func BenchmarkFig1RTZBaseline(b *testing.B) {
	sys := benchSystem(b, 1, 128)
	rng := rand.New(rand.NewSource(2))
	sub, err := rtz.New(sys.Graph, sys.Metric, rng, rtz.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := sys.Graph.N()
	var totalStretch float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(i % n)
		v := graph.NodeID((i*7 + 1) % n)
		if u == v {
			v = (v + 1) % graph.NodeID(n)
		}
		w, err := sub.Roundtrip(u, v)
		if err != nil {
			b.Fatal(err)
		}
		totalStretch += float64(w) / float64(sys.Metric.R(u, v))
	}
	b.ReportMetric(totalStretch/float64(b.N), "stretch/op")
	b.ReportMetric(float64(sub.MaxTableWords()), "maxTblWords")
}

// BenchmarkFig1Stretch6Roundtrip is E1/E3: the §2 scheme's routing cost
// and measured stretch (bound 6).
func BenchmarkFig1Stretch6Roundtrip(b *testing.B) {
	sys := benchSystem(b, 3, 128)
	sch, err := sys.BuildStretchSix(4)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundtrips(b, sys, sch)
}

// BenchmarkFig1ExStretchK2Roundtrip and K3 are E1/E4 rows (§3 scheme).
func BenchmarkFig1ExStretchK2Roundtrip(b *testing.B) {
	sys := benchSystem(b, 5, 128)
	sch, err := sys.BuildExStretch(2, 6)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundtrips(b, sys, sch)
}

func BenchmarkFig1ExStretchK3Roundtrip(b *testing.B) {
	sys := benchSystem(b, 7, 128)
	sch, err := sys.BuildExStretch(3, 8)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundtrips(b, sys, sch)
}

// BenchmarkFig1PolyK2Roundtrip is E1/E6 (§4 scheme, bound 8k^2+4k-4).
func BenchmarkFig1PolyK2Roundtrip(b *testing.B) {
	sys := benchSystem(b, 9, 128)
	sch, err := sys.BuildPolynomial(2)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundtrips(b, sys, sch)
}

// BenchmarkBuildStretch6 measures §2 preprocessing (E3/E9).
func BenchmarkBuildStretch6(b *testing.B) {
	sys := benchSystem(b, 11, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BuildStretchSix(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildExStretchK3 measures §3 preprocessing (E4).
func BenchmarkBuildExStretchK3(b *testing.B) {
	sys := benchSystem(b, 12, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BuildExStretch(3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildPolyK2 measures §4 preprocessing (E6).
func BenchmarkBuildPolyK2(b *testing.B) {
	sys := benchSystem(b, 13, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BuildPolynomial(2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2BlockAssign is E2: the Lemma 1/4 randomized assignment
// with verification.
func BenchmarkFig2BlockAssign(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	g := RandomSC(128, 512, 6, rng)
	m := AllPairs(g)
	space := rtmetric.New(g, m, nil)
	space.Init(0) // warm the order cache like a real build would
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := blocks.Assign(space, 2, rand.New(rand.NewSource(int64(i))), blocks.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if a.MaxSetSize() == 0 {
			b.Fatal("empty assignment")
		}
	}
}

// BenchmarkTheorem10Cover is E5: the Figs. 7-8 cover construction.
func BenchmarkTheorem10Cover(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	g := RandomSC(128, 512, 6, rng)
	m := AllPairs(g)
	dm := func(u, v graph.NodeID) graph.Dist { return m.R(u, v) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cover.Build(g, dm, 3, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkBallGrowingCover is E10's ablation counterpart.
func BenchmarkBallGrowingCover(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	g := RandomSC(128, 512, 6, rng)
	m := AllPairs(g)
	dm := func(u, v graph.NodeID) graph.Dist { return m.R(u, v) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cover.BuildBallGrowing(g, dm, 3, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkLemma14TreeBuild measures fixed-port tree routing
// preprocessing over a full graph (Lemma 14 substrate).
func BenchmarkLemma14TreeBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g := RandomSC(256, 1024, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := tree.BuildDouble(g, graph.NodeID(i%g.N()), nil)
		if err != nil {
			b.Fatal(err)
		}
		if t.RTHeight() == 0 {
			b.Fatal("degenerate tree")
		}
	}
}

// BenchmarkLemma2RTZOneWay is E7: one-way routing on the stretch-3
// substrate, whose guarantee p(u,v) <= r(u,v)+d(u,v) drives §2's proof.
func BenchmarkLemma2RTZOneWay(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	g := RandomSC(128, 512, 8, rng)
	m := AllPairs(g)
	sub, err := rtz.New(g, m, rng, rtz.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(i % n)
		v := graph.NodeID((i*13 + 5) % n)
		if u == v {
			v = (v + 1) % graph.NodeID(n)
		}
		if _, _, err := sub.Route(u, sub.LabelOf(v)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDijkstra measures the shortest-path substrate (S1): the
// pooled one-shot entry point, which pays two owned-row copies per call.
// The body lives in benchsuite so `go test -bench` and `rtbench -exp
// bench` measure the identical code.
func BenchmarkDijkstra(b *testing.B) { benchsuite.BenchDijkstraPooled(b) }

// BenchmarkDijkstraScratch measures the zero-allocation core (E13/S4):
// the same runs through one reused SSSPScratch, rows aliased not copied.
func BenchmarkDijkstraScratch(b *testing.B) { benchsuite.BenchDijkstraScratch(b) }

// BenchmarkAllPairs measures full metric construction (S1).
func BenchmarkAllPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	g := RandomSC(256, 1024, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := AllPairs(g)
		if m.RTDiam() == 0 {
			b.Fatal("degenerate metric")
		}
	}
}

// BenchmarkTheorem15Reduction is E8: the lower-bound analysis pass.
func BenchmarkTheorem15Reduction(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := Bidirect(RandomSC(24, 72, 4, rng))
	g.AssignPorts(rng.Intn)
	sys, err := NewSystem(g, RandomNaming(g.N(), rng))
	if err != nil {
		b.Fatal(err)
	}
	sch, err := sys.BuildStretchSix(22)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := AnalyzeLowerBound(sys, sch)
		if err != nil {
			b.Fatal(err)
		}
		if SummarizeLowerBound(reports).Pairs == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchmarkInitOrder measures the Init_v total-order computation (S2),
// the dominant preprocessing cost after all-pairs.
func BenchmarkInitOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	g := RandomSC(512, 2048, 8, rng)
	m := AllPairs(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space := rtmetric.New(g, m, nil)
		ord := space.Init(graph.NodeID(i % g.N()))
		if len(ord) != g.N() {
			b.Fatal("bad order")
		}
	}
}

// BenchmarkMetricBuild compares the cost of standing up each
// DistanceOracle flavor on the same 512-node graph: the sequential dense
// matrix (the pre-refactor default), the parallel dense build (the new
// AllPairs default), and the lazy oracle driven through one full
// row sweep (2n Dijkstras, bounded cache) — the worst case a scheme
// build can demand of it.
func BenchmarkMetricBuild(b *testing.B) {
	// Bodies live in benchsuite (shared with `rtbench -exp bench`);
	// lazy-single-row measures the latency a cold point query actually
	// pays: one Dijkstra, versus the full n-Dijkstra dense build.
	b.Run("dense-sequential", benchsuite.BenchMetricDenseSequential)
	b.Run("dense-parallel", benchsuite.BenchMetricDenseParallel)
	b.Run("lazy-full-sweep", benchsuite.BenchMetricLazyFullSweep)
	b.Run("lazy-single-row", benchsuite.BenchMetricLazySingleRow)
}

// BenchmarkEdgeByPort compares the per-hop port-resolution cost across
// generations of the lookup: the O(degree) linear scan, the sealed O(1)
// tables behind EdgeByPort ("csr" sub-benchmark name kept for trajectory
// continuity — adversarial labels exercise the open-addressed path,
// "dense" the flat-table path), and the O(1) pair hash.
func BenchmarkEdgeByPort(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	g := RandomSC(1024, 16*1024, 8, rng)
	g.AssignPorts(rng.Intn)
	// Collect one valid (node, port) probe per node.
	probes := make([]struct {
		u NodeID
		p graph.PortID
	}, g.N())
	for u := 0; u < g.N(); u++ {
		edges := g.Out(NodeID(u))
		probes[u].u = NodeID(u)
		probes[u].p = edges[len(edges)-1].Port
	}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := probes[i%len(probes)]
			found := false
			for _, e := range g.Out(pr.u) {
				if e.Port == pr.p {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("probe port missing")
			}
		}
	})
	// "csr" (adversarial labels -> hashed tables; name kept for
	// trajectory continuity) and "dense" (contiguous labels -> flat
	// tables) share their bodies with `rtbench -exp bench`.
	b.Run("csr", benchsuite.BenchEdgeByPortAdversarial)
	b.Run("dense", benchsuite.BenchEdgeByPortDense)
	b.Run("portto-hash", func(b *testing.B) {
		// The companion O(1) pair lookup used by table construction.
		targets := make([]NodeID, len(probes))
		for u := range targets {
			targets[u] = g.Out(NodeID(u))[0].To
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := NodeID(i % len(targets))
			if _, ok := g.PortTo(u, targets[u]); !ok {
				b.Fatal("edge missing")
			}
		}
	})
}

// BenchmarkTrafficThroughput is scaling study S3: serving rate of one
// shared compiled StretchSix plane as the worker count grows. Each
// iteration is ONE routed roundtrip; packets/s is reported as a custom
// metric. On a single-core host the workers=2,4 rows measure scheduling
// overhead rather than speedup — run on a multicore box for the scaling
// curve.
func BenchmarkTrafficThroughput(b *testing.B) {
	sys := benchSystem(b, 1, 256)
	s6, err := sys.BuildStretchSix(1)
	if err != nil {
		b.Fatal(err)
	}
	// Compile once, outside every timed region; traffic.Run directly
	// (not ServeTraffic) so the nil Oracle skips the stretch post-pass
	// and the measurement is pure serving throughput.
	pl, err := traffic.Compile(s6)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			res, err := traffic.Run(pl, traffic.Config{
				Workers:  workers,
				Packets:  int64(b.N),
				Seed:     1,
				Workload: traffic.Spec{Kind: traffic.Zipf},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PacketsPerSec(), "packets/s")
			b.ReportMetric(res.HopsPerSec(), "hops/s")
		})
	}
}

// BenchmarkMarshalScheme measures wire-format snapshot encoding
// (internal/benchsuite: identical body serves `rtbench -exp bench`).
func BenchmarkMarshalScheme(b *testing.B) { benchsuite.BenchMarshalScheme(b) }

// BenchmarkDeploymentForward serves traffic through a wire-restored
// per-node-Router Deployment; the PR4 bar is within 10% of the
// monolithic compiled plane (BenchmarkTrafficThroughput workers=1).
func BenchmarkDeploymentForward(b *testing.B) { benchsuite.BenchDeploymentForward(b) }

// BenchmarkClusterThroughput is scaling study S6: the same restored
// Deployment sharded across an 8-shard channel-bus cluster, every
// boundary-crossing hop wire-encoded (internal/benchsuite: identical
// body serves `rtbench -exp bench`).
func BenchmarkClusterThroughput(b *testing.B) { benchsuite.BenchClusterThroughput(b) }

// BenchmarkClusterTelemetry is the identical run with the telemetry
// plane attached at rtserve defaults — measured against the row above,
// it is the observability overhead (E16 acceptance: within a few
// percent).
func BenchmarkClusterTelemetry(b *testing.B) { benchsuite.BenchClusterTelemetry(b) }
