package rtroute

import (
	"net/http"

	"rtroute/internal/cluster"
	"rtroute/internal/core"
	"rtroute/internal/telemetry"
	"rtroute/internal/wire"
)

// Cluster serving re-exports (experiment E15 / scaling study S6): shard
// a Deployment's per-node routers across S serving shards and forward
// packets between shards as wire-encoded frames — the in-process
// channel-bus engine here, the TCP daemons via cmd/rtserve.
type (
	// ClusterConfig parameterizes one in-process cluster run.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates one cluster run's serving stats,
	// including the cross-shard hop accounting.
	ClusterResult = cluster.Result
	// ClusterShardStats is one shard's serving record.
	ClusterShardStats = cluster.ShardStats
	// PlacementPolicy selects how nodes are partitioned across shards.
	PlacementPolicy = cluster.Policy
	// Placement maps every node to its owning shard.
	Placement = cluster.Placement
)

// Placement policies for ClusterConfig.Placement.
const (
	// PlaceContiguous racks nodes by index range.
	PlaceContiguous = cluster.Contiguous
	// PlaceHash scatters nodes by hashed index.
	PlaceHash = cluster.Hash
	// PlaceRTZAligned co-locates each stretch-3 cluster on one shard.
	PlaceRTZAligned = cluster.RTZAligned
)

// NewPlacement partitions a deployment's nodes across shards under the
// given policy (deterministic for a given deployment, count and policy).
func NewPlacement(dep *Deployment, shards int, policy PlacementPolicy) (*Placement, error) {
	return cluster.NewPlacement(dep, shards, policy)
}

// ServeCluster shards the scheme across an in-process cluster —
// cfg.Shards shard mailboxes over a channel bus, packets wire-encoded
// at every shard crossing — and serves cfg.Packets roundtrips through
// it. Schemes that are not already Deployments are decomposed and
// reassembled first (Deploy), since only per-node state may be sharded.
// When cfg.Oracle is nil, the system's own distance oracle supplies the
// stretch accounting.
func (s *System) ServeCluster(sch Scheme, cfg ClusterConfig) (*ClusterResult, error) {
	dep, ok := sch.(*Deployment)
	if !ok {
		var err error
		if dep, err = core.Deploy(sch); err != nil {
			return nil, err
		}
	}
	if cfg.Oracle == nil {
		cfg.Oracle = s.Metric
	}
	return cluster.Run(dep, cfg)
}

// FormatCluster renders a cluster result as the E15 sharded-serving
// report.
func FormatCluster(r *ClusterResult) string { return r.Format() }

// Telemetry re-exports (experiment E16): the observability plane both
// serving engines and the daemons thread their counters, sampled stage
// timings, heat sketches and hop traces through. Attach a sink via
// TrafficConfig.Sink / ClusterConfig.Sink (their SinkShape methods
// produce the matching TelemetryConfig) and read it back with
// Snapshot, the stage table, or the HTTP surface.
type (
	// TelemetryConfig sizes a telemetry sink (probe shape, sampling
	// strides, trace ring, heat sketch).
	TelemetryConfig = telemetry.Config
	// TelemetrySink owns the probes of one instrumented run; nil turns
	// the plane off everywhere.
	TelemetrySink = telemetry.Sink
	// TelemetrySnapshot is one merged, diffable point-in-time reading.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryStageRow is one row of the measured per-stage cost table.
	TelemetryStageRow = telemetry.StageRow
	// TelemetryEvent is one recorded flight-recorder hop event.
	TelemetryEvent = telemetry.Event
)

// NewTelemetrySink creates a sink for the given probe shape.
func NewTelemetrySink(cfg TelemetryConfig) *TelemetrySink { return telemetry.New(cfg) }

// FormatStageTable renders a measured stage-cost table; a non-zero
// wallNsPerRT adds the coverage line (stage sum over measured wall).
func FormatStageTable(rows []TelemetryStageRow, wallNsPerRT float64) string {
	return telemetry.FormatStageTable(rows, wallNsPerRT)
}

// TelemetryBusySum sums the non-wait stage rows' per-roundtrip cost.
func TelemetryBusySum(rows []TelemetryStageRow) float64 { return telemetry.BusySum(rows) }

// ServeTelemetry serves a sink's /metrics, /trace and /debug/pprof on
// addr, returning the server and its bound address.
func ServeTelemetry(addr string, s *TelemetrySink, extra func() map[string]any) (*http.Server, string, error) {
	return telemetry.Serve(addr, s, extra)
}

// FormatTraceTimeline renders recorded flight-recorder events as a
// human-readable hop timeline.
func FormatTraceTimeline(events []TelemetryEvent) string {
	return telemetry.FormatTimeline(events)
}

// SnapshotInfo is a scheme snapshot's cheap preamble: format version,
// scheme kind and node count, readable without decoding any table.
type SnapshotInfo = wire.SnapshotInfo

// PeekSnapshot reads a snapshot's preamble. On a snapshot written by a
// different format version the error wraps ErrSnapshotVersion and the
// info still reports the blob's version.
func PeekSnapshot(data []byte) (SnapshotInfo, error) { return wire.PeekSnapshot(data) }

// ErrSnapshotVersion is wrapped by decode errors caused by a snapshot
// from a different wire-format version (errors.Is-matchable).
var ErrSnapshotVersion = wire.ErrVersion

// SnapshotVersion is the wire-format version this build reads and
// writes.
const SnapshotVersion = wire.Version
