package rtroute

import (
	"rtroute/internal/cluster"
	"rtroute/internal/core"
	"rtroute/internal/wire"
)

// Cluster serving re-exports (experiment E15 / scaling study S6): shard
// a Deployment's per-node routers across S serving shards and forward
// packets between shards as wire-encoded frames — the in-process
// channel-bus engine here, the TCP daemons via cmd/rtserve.
type (
	// ClusterConfig parameterizes one in-process cluster run.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates one cluster run's serving stats,
	// including the cross-shard hop accounting.
	ClusterResult = cluster.Result
	// ClusterShardStats is one shard's serving record.
	ClusterShardStats = cluster.ShardStats
	// PlacementPolicy selects how nodes are partitioned across shards.
	PlacementPolicy = cluster.Policy
	// Placement maps every node to its owning shard.
	Placement = cluster.Placement
)

// Placement policies for ClusterConfig.Placement.
const (
	// PlaceContiguous racks nodes by index range.
	PlaceContiguous = cluster.Contiguous
	// PlaceHash scatters nodes by hashed index.
	PlaceHash = cluster.Hash
	// PlaceRTZAligned co-locates each stretch-3 cluster on one shard.
	PlaceRTZAligned = cluster.RTZAligned
)

// NewPlacement partitions a deployment's nodes across shards under the
// given policy (deterministic for a given deployment, count and policy).
func NewPlacement(dep *Deployment, shards int, policy PlacementPolicy) (*Placement, error) {
	return cluster.NewPlacement(dep, shards, policy)
}

// ServeCluster shards the scheme across an in-process cluster —
// cfg.Shards shard mailboxes over a channel bus, packets wire-encoded
// at every shard crossing — and serves cfg.Packets roundtrips through
// it. Schemes that are not already Deployments are decomposed and
// reassembled first (Deploy), since only per-node state may be sharded.
// When cfg.Oracle is nil, the system's own distance oracle supplies the
// stretch accounting.
func (s *System) ServeCluster(sch Scheme, cfg ClusterConfig) (*ClusterResult, error) {
	dep, ok := sch.(*Deployment)
	if !ok {
		var err error
		if dep, err = core.Deploy(sch); err != nil {
			return nil, err
		}
	}
	if cfg.Oracle == nil {
		cfg.Oracle = s.Metric
	}
	return cluster.Run(dep, cfg)
}

// FormatCluster renders a cluster result as the E15 sharded-serving
// report.
func FormatCluster(r *ClusterResult) string { return r.Format() }

// SnapshotInfo is a scheme snapshot's cheap preamble: format version,
// scheme kind and node count, readable without decoding any table.
type SnapshotInfo = wire.SnapshotInfo

// PeekSnapshot reads a snapshot's preamble. On a snapshot written by a
// different format version the error wraps ErrSnapshotVersion and the
// info still reports the blob's version.
func PeekSnapshot(data []byte) (SnapshotInfo, error) { return wire.PeekSnapshot(data) }

// ErrSnapshotVersion is wrapped by decode errors caused by a snapshot
// from a different wire-format version (errors.Is-matchable).
var ErrSnapshotVersion = wire.ErrVersion

// SnapshotVersion is the wire-format version this build reads and
// writes.
const SnapshotVersion = wire.Version
