package rtroute

import (
	"math/rand"
	"os"
	"testing"
)

// buildPair constructs the same scheme twice over one graph and naming:
// once against the dense matrix, once against a deliberately tiny lazy
// oracle. Construction consumes randomness identically in both cases, so
// any divergence in tables — and therefore in routes — must come from a
// distance disagreement between the oracles.
func buildPair(t *testing.T, g *Graph, naming *Naming, build func(sys *System) (Scheme, error)) (Scheme, Scheme) {
	t.Helper()
	dense, err := NewSystemWith(g, naming, SystemConfig{Metric: MetricDense})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewSystemWith(g, naming, SystemConfig{Metric: MetricLazy, LazyCacheRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := build(dense)
	if err != nil {
		t.Fatalf("dense build: %v", err)
	}
	ls, err := build(lazy)
	if err != nil {
		t.Fatalf("lazy build: %v", err)
	}
	return ds, ls
}

func samePath(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSchemesIdenticalUnderLazyOracle is the PR's acceptance property:
// all three schemes must produce node-for-node identical roundtrip routes
// (hence identical stretch) whether built on the dense matrix or on a
// bounded lazy oracle.
func TestSchemesIdenticalUnderLazyOracle(t *testing.T) {
	const n = 27
	for _, seed := range []int64{3, 17} {
		rng := rand.New(rand.NewSource(seed))
		g := RandomSC(n, 4*n, 8, rng)
		g.AssignPorts(rng.Intn)
		naming := RandomNaming(n, rng)

		for _, sc := range []struct {
			name  string
			build func(sys *System) (Scheme, error)
		}{
			{"stretch6", func(sys *System) (Scheme, error) { return sys.BuildStretchSix(seed) }},
			{"exstretch k=2", func(sys *System) (Scheme, error) { return sys.BuildExStretch(2, seed) }},
			{"polystretch k=2", func(sys *System) (Scheme, error) { return sys.BuildPolynomial(2) }},
		} {
			ds, ls := buildPair(t, g, naming, sc.build)
			if dw, lw := ds.MaxTableWords(), ls.MaxTableWords(); dw != lw {
				t.Fatalf("seed %d %s: table words diverge dense=%d lazy=%d", seed, sc.name, dw, lw)
			}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u == v {
						continue
					}
					srcName := naming.Name(int32(u))
					dstName := naming.Name(int32(v))
					dt, err := ds.Roundtrip(srcName, dstName)
					if err != nil {
						t.Fatalf("seed %d %s dense (%d,%d): %v", seed, sc.name, u, v, err)
					}
					lt, err := ls.Roundtrip(srcName, dstName)
					if err != nil {
						t.Fatalf("seed %d %s lazy (%d,%d): %v", seed, sc.name, u, v, err)
					}
					if !samePath(dt.Out.Path, lt.Out.Path) || !samePath(dt.Back.Path, lt.Back.Path) {
						t.Fatalf("seed %d %s (%d,%d): routes diverge\ndense out %v back %v\nlazy  out %v back %v",
							seed, sc.name, u, v, dt.Out.Path, dt.Back.Path, lt.Out.Path, lt.Back.Path)
					}
					if dt.Weight() != lt.Weight() {
						t.Fatalf("seed %d %s (%d,%d): weights diverge %d vs %d",
							seed, sc.name, u, v, dt.Weight(), lt.Weight())
					}
				}
			}
		}
	}
}

// TestSystemLazyMetricQueries checks the facade's R/D/Stretch answers
// agree between oracle kinds (they feed every measured stretch figure).
func TestSystemLazyMetricQueries(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(8))
	g := RandomSC(n, 4*n, 6, rng)
	naming := RandomNaming(n, rng)
	dense, err := NewSystem(g, naming)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewSystemWith(g, naming, SystemConfig{Metric: MetricLazy, LazyCacheRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(n); u++ {
		for v := int32(0); v < int32(n); v++ {
			if dense.R(u, v) != lazy.R(u, v) || dense.D(u, v) != lazy.D(u, v) {
				t.Fatalf("system query diverges at names (%d,%d)", u, v)
			}
		}
	}
	if _, err := NewSystemWith(g, naming, SystemConfig{Metric: "bogus"}); err == nil {
		t.Fatal("bogus metric kind accepted")
	}
}

// TestLazyStretchSixLargeScale is the memory acceptance run: build and
// measure the §2 scheme on a 5,000-node random SC digraph through the
// lazy oracle, and verify the oracle held strictly less distance state
// than the dense n×n matrix would require. The build takes minutes, so
// it runs only when RTROUTE_LARGE is set (see Makefile target `large`);
// TestLazyStretchSixMidScale keeps the same assertions in every full
// `go test` run at n=600.
func TestLazyStretchSixLargeScale(t *testing.T) {
	if os.Getenv("RTROUTE_LARGE") == "" {
		t.Skip("set RTROUTE_LARGE=1 to run the 5,000-node lazy-oracle build")
	}
	lazyStretchSixScaleRun(t, 5000, 40000)
}

func TestLazyStretchSixMidScale(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale lazy build skipped in -short")
	}
	lazyStretchSixScaleRun(t, 600, 3000)
}

func lazyStretchSixScaleRun(t *testing.T, n, pairs int) {
	rng := rand.New(rand.NewSource(1))
	g := RandomSC(n, 5*n, 8, rng)
	g.AssignPorts(rng.Intn)
	oracle := NewLazyOracle(g, 0)
	sys := &System{Graph: g, Metric: oracle, Naming: RandomNaming(n, rng)}
	sch, err := sys.BuildStretchSixWith(7, Stretch6Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := MeasureScheme(sys, sch, pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 6 {
		t.Fatalf("stretch-6 bound violated under lazy oracle: %.3f", stats.Max)
	}
	st := oracle.Stats()
	// The oracle's resident distance state is PeakRows rows of n words;
	// the dense matrix is n rows. Strictly less, by an n/PeakRows factor.
	if st.PeakRows >= n {
		t.Fatalf("lazy oracle held %d rows; no saving over the dense %d-row matrix", st.PeakRows, n)
	}
	t.Logf("n=%d: max stretch %.3f mean %.3f; oracle peak %d rows (%.1f MiB) vs dense %d rows (%.1f MiB); %d misses %d hits %d evictions",
		n, stats.Max, stats.Mean,
		st.PeakRows, float64(st.PeakRows)*float64(n)*8/(1<<20),
		n, float64(n)*float64(n)*8/(1<<20),
		st.Misses, st.Hits, st.Evictions)
}
