package rtroute

import (
	"math/rand"
	"testing"
)

func newTestSystem(t testing.TB, seed int64, n int) *System {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := RandomSC(n, 4*n, 6, rng)
	sys, err := NewSystem(g, RandomNaming(n, rng))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(NewGraph(1), nil); err == nil {
		t.Fatal("single node accepted")
	}
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	if _, err := NewSystem(g, nil); err == nil {
		t.Fatal("non-strongly-connected graph accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSystem(RandomSC(10, 20, 3, rng), IdentityNaming(5)); err == nil {
		t.Fatal("mismatched naming accepted")
	}
}

func TestSystemDefaultsToIdentityNaming(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys, err := NewSystem(RandomSC(10, 30, 3, rng), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Naming.Name(3) != 3 {
		t.Fatal("default naming is not identity")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := newTestSystem(t, 3, 30)
	schemes := make([]Scheme, 0, 3)
	s6, err := sys.BuildStretchSix(4)
	if err != nil {
		t.Fatal(err)
	}
	schemes = append(schemes, s6)
	ex, err := sys.BuildExStretch(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	schemes = append(schemes, ex)
	poly, err := sys.BuildPolynomial(2)
	if err != nil {
		t.Fatal(err)
	}
	schemes = append(schemes, poly)

	for _, sch := range schemes {
		for u := int32(0); u < 30; u += 5 {
			for v := int32(1); v < 30; v += 7 {
				if u == v {
					continue
				}
				tr, err := sch.Roundtrip(u, v)
				if err != nil {
					t.Fatalf("%s roundtrip(%d,%d): %v", sch.SchemeName(), u, v, err)
				}
				st := sys.Stretch(u, v, tr)
				if st < 1 {
					t.Fatalf("%s stretch %.3f below 1", sch.SchemeName(), st)
				}
				if st > 40 {
					t.Fatalf("%s stretch %.3f absurd", sch.SchemeName(), st)
				}
			}
		}
	}
}

func TestSystemMetricHelpers(t *testing.T) {
	sys := newTestSystem(t, 6, 12)
	for u := int32(0); u < 12; u++ {
		for v := int32(0); v < 12; v++ {
			want := sys.D(u, v) + sys.D(v, u)
			if got := sys.R(u, v); got != want {
				t.Fatalf("R(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestMeasureSchemeFacade(t *testing.T) {
	sys := newTestSystem(t, 7, 20)
	s6, err := sys.BuildStretchSix(8)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := MeasureScheme(sys, s6, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs == 0 || stats.Max > 6 || stats.Mean < 1 {
		t.Fatalf("implausible stats %+v", stats)
	}
}

func TestLowerBoundFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := Grid(3, 4, rng)
	sys, err := NewSystem(g, RandomNaming(g.N(), rng))
	if err != nil {
		t.Fatal(err)
	}
	s6, err := sys.BuildStretchSix(11)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := AnalyzeLowerBound(sys, s6)
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeLowerBound(reports)
	if sum.Pairs != g.N()*(g.N()-1) {
		t.Fatalf("pairs %d, want %d", sum.Pairs, g.N()*(g.N()-1))
	}
	if sum.MaxRoundtripStretch > 6 {
		t.Fatalf("stretch bound violated: %f", sum.MaxRoundtripStretch)
	}
}

func TestBuildPolynomialVariant(t *testing.T) {
	sys := newTestSystem(t, 12, 16)
	poly, err := sys.BuildPolynomialVariant(2, 1.5, CoverBallGrowing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poly.Roundtrip(sys.Naming.Name(0), sys.Naming.Name(7)); err != nil {
		t.Fatal(err)
	}
}
