// Package rtroute is a Go implementation of compact roundtrip routing
// with topology-independent node names (TINN), reproducing
//
//	Marta Arias, Lenore J. Cowen, Kofi A. Laing,
//	"Compact roundtrip routing with topology-independent node names",
//	PODC 2003 / J. Computer and System Sciences 74 (2008) 775-795.
//
// The library routes packets in strongly connected directed weighted
// networks where node names carry no topological information (an
// adversarial permutation of {0..n-1}), ports are labeled adversarially,
// and a packet arrives carrying only its destination's name. Three
// schemes trade local table size against roundtrip stretch:
//
//   - StretchSix: O~(sqrt n) tables, stretch 6, arbitrary weights (§2);
//   - ExStretch(k): O~(n^(1/k)) tables, stretch exponential in k (§3);
//   - Polynomial(k): O~(k^2 n^(2/k) log D) tables, stretch 8k^2+4k-4 (§4).
//
// Quick start:
//
//	rng := rand.New(rand.NewSource(1))
//	g := rtroute.RandomSC(64, 256, 8, rng)
//	sys, _ := rtroute.NewSystem(g, rtroute.RandomNaming(64, rng))
//	scheme, _ := sys.Build(rtroute.StretchSix, rtroute.WithSeed(42))
//	trace, _ := scheme.Roundtrip(srcName, dstName)
//	fmt.Println(sys.Stretch(srcName, dstName, trace))
//
// Build is the single construction entry point for every scheme kind
// (StretchSix, ExStretch, Polynomial, RTZStretch3, HopSubstrate); the
// per-scheme Build* methods remain as deprecated wrappers for one
// release. Built schemes decompose into per-node state: Deploy
// reassembles a scheme as per-node Routers, and MarshalScheme /
// UnmarshalScheme snapshot it through the versioned binary wire format
// (see DESIGN.md "Wire format & deployment"). Deployments also serve
// from a sharded cluster — ServeCluster in process, cmd/rtserve as
// one-daemon-per-shard over TCP — with packets crossing shard
// boundaries as wire-encoded frames (DESIGN.md "Cluster serving").
package rtroute

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rtroute/internal/blocks"
	"rtroute/internal/core"
	"rtroute/internal/cover"
	"rtroute/internal/eval"
	"rtroute/internal/graph"
	"rtroute/internal/lowerbound"
	"rtroute/internal/names"
	"rtroute/internal/sim"
	"rtroute/internal/traffic"
)

// Core aliases: the facade exposes the internal types directly so that
// values flow between the public API and the experiment harness without
// copying.
type (
	// Dist is an exact integer distance.
	Dist = graph.Dist
	// NodeID is a topological node index.
	NodeID = graph.NodeID
	// Graph is a directed weighted graph with fixed-port edge labels.
	Graph = graph.Graph
	// Oracle answers shortest-path distance queries; schemes are built
	// against this interface so the dense matrix is one choice, not a
	// requirement.
	Oracle = graph.DistanceOracle
	// Metric is the eager all-pairs distance matrix with roundtrip
	// helpers (alias of DenseMetric).
	Metric = graph.Metric
	// DenseMetric is the O(n^2)-word all-pairs oracle.
	DenseMetric = graph.DenseMetric
	// LazyOracle computes distance rows on demand behind a bounded LRU,
	// so schemes can be built on graphs whose dense matrix would not fit
	// in memory.
	LazyOracle = graph.LazyOracle
	// Naming maps topological indices to TINN names and back.
	Naming = names.Permutation
	// Scheme is a built TINN roundtrip routing scheme.
	Scheme = core.Scheme
	// RoundtripTrace reports both legs of one routed roundtrip.
	RoundtripTrace = sim.RoundtripTrace
	// Header is a mutable packet header (scheme-specific; see
	// MarshalHeader/UnmarshalHeader for the byte-packet form).
	Header = sim.Header
	// CoverVariant selects the sparse-cover construction.
	CoverVariant = cover.Variant
)

// Inf is the distance of unreachable pairs.
const Inf = graph.Inf

// Cover variants for the §4 scheme and the hop substrate.
const (
	CoverAwerbuchPeleg = cover.VariantAwerbuchPeleg
	CoverBallGrowing   = cover.VariantBallGrowing
)

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Graph generators (seeded, always strongly connected).
var (
	RandomSC    = graph.RandomSC
	RandomGNP   = graph.RandomGNP
	Ring        = graph.Ring
	Grid        = graph.Grid
	Bidirect    = graph.Bidirect
	ScaleFreeSC = graph.ScaleFreeSC
	LayeredSC   = graph.LayeredSC
	Complete    = graph.Complete
)

// Namings.
var (
	IdentityNaming = names.Identity
	RandomNaming   = names.Random
	ReversedNaming = names.Reversed
)

// NewNaming validates an explicit name permutation (names[v] is the TINN
// name of node v).
func NewNaming(nodeNames []int32) (*Naming, error) { return names.NewPermutation(nodeNames) }

// Directory realizes the §1.1.2 hashing reduction for self-chosen names:
// arbitrary byte-string names are hashed onto {0..n-1} with per-slot
// buckets carrying the colliding full names.
type Directory = names.Directory

// NewDirectory hashes the given unique self-chosen names into n slots.
func NewDirectory(fullNames []string, n int, rng *rand.Rand) (*Directory, error) {
	return names.NewDirectory(fullNames, n, rng)
}

// AllPairs computes the dense distance metric of g (parallel over
// GOMAXPROCS workers).
func AllPairs(g *Graph) *Metric { return graph.AllPairs(g) }

// AllPairsParallel computes the metric with a worker pool (0 = GOMAXPROCS).
func AllPairsParallel(g *Graph, workers int) *Metric { return graph.AllPairsParallel(g, workers) }

// NewLazyOracle creates a bounded lazy distance oracle over g holding at
// most cacheRows distance rows (<= 0 selects the default budget).
func NewLazyOracle(g *Graph, cacheRows int) *LazyOracle { return graph.NewLazyOracle(g, cacheRows) }

// ReadGraph parses a graph in the textual exchange format of
// (*Graph).WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// StronglyConnected reports whether g is strongly connected.
func StronglyConnected(g *Graph) bool { return graph.StronglyConnected(g) }

// System bundles a network, its distance oracle and its naming, and
// builds routing schemes over them.
type System struct {
	Graph  *Graph
	Metric Oracle
	Naming *Naming
}

// MetricKind selects the distance oracle a System is built on.
type MetricKind string

const (
	// MetricDense materializes the full n×n matrix (parallel Dijkstras):
	// O(1) queries, O(n^2) words.
	MetricDense MetricKind = "dense"
	// MetricLazy computes distance rows on demand behind a bounded LRU:
	// schemes build without ever allocating n^2 distances.
	MetricLazy MetricKind = "lazy"
)

// SystemConfig tunes NewSystemWith.
type SystemConfig struct {
	// Metric selects the oracle implementation (default MetricDense).
	Metric MetricKind
	// LazyCacheRows bounds the lazy oracle's row cache (<= 0 selects the
	// package default). Ignored for MetricDense.
	LazyCacheRows int
}

// NewSystem validates the network and computes its dense metric. The
// naming must cover exactly the graph's nodes; nil selects the identity
// naming. Use NewSystemWith to select the lazy oracle instead.
func NewSystem(g *Graph, naming *Naming) (*System, error) {
	return NewSystemWith(g, naming, SystemConfig{})
}

// NewSystemWith validates the network and attaches the configured
// distance oracle. With MetricLazy the system never materializes the n×n
// distance matrix: scheme construction pulls rows through the bounded
// cache on demand.
func NewSystemWith(g *Graph, naming *Naming, cfg SystemConfig) (*System, error) {
	if g.N() < 2 {
		return nil, fmt.Errorf("rtroute: need at least 2 nodes, got %d", g.N())
	}
	if !graph.StronglyConnected(g) {
		return nil, fmt.Errorf("rtroute: graph is not strongly connected; roundtrip distances would be infinite")
	}
	if naming == nil {
		naming = names.Identity(g.N())
	}
	if naming.N() != g.N() {
		return nil, fmt.Errorf("rtroute: naming covers %d nodes, graph has %d", naming.N(), g.N())
	}
	var m Oracle
	switch cfg.Metric {
	case MetricDense, "":
		m = graph.AllPairs(g)
	case MetricLazy:
		m = graph.NewLazyOracle(g, cfg.LazyCacheRows)
	default:
		return nil, fmt.Errorf("rtroute: unknown metric kind %q (want %q or %q)", cfg.Metric, MetricDense, MetricLazy)
	}
	return &System{Graph: g, Metric: m, Naming: naming}, nil
}

// R returns the roundtrip distance between two NAMES.
func (s *System) R(srcName, dstName int32) Dist {
	return s.Metric.R(NodeID(s.Naming.Node(srcName)), NodeID(s.Naming.Node(dstName)))
}

// D returns the one-way distance between two NAMES.
func (s *System) D(srcName, dstName int32) Dist {
	return s.Metric.D(NodeID(s.Naming.Node(srcName)), NodeID(s.Naming.Node(dstName)))
}

// Stretch returns the roundtrip stretch of a measured trace for the
// pair. Unreachable pairs (roundtrip distance Inf, possible only on
// hand-assembled Systems — NewSystem rejects non-strongly-connected
// graphs) report +Inf explicitly rather than a finite ratio against the
// Inf sentinel.
func (s *System) Stretch(srcName, dstName int32, tr *RoundtripTrace) float64 {
	r := s.R(srcName, dstName)
	if r >= Inf {
		return math.Inf(1)
	}
	if r == 0 {
		return 1
	}
	return float64(tr.Weight()) / float64(r)
}

// BuildStretchSix builds the §2 scheme (stretch 6, O~(sqrt n) tables).
//
// Deprecated: use Build(StretchSix, WithSeed(seed)). Kept as a thin
// wrapper for one release.
func (s *System) BuildStretchSix(seed int64) (*core.StretchSix, error) {
	return s.buildS6(BuildConfig{Seed: seed})
}

func (s *System) buildS6(cfg BuildConfig) (*core.StretchSix, error) {
	sch, err := s.BuildWith(StretchSix, cfg)
	if err != nil {
		return nil, err
	}
	return sch.(*core.StretchSix), nil
}

func (s *System) buildEx(cfg BuildConfig) (*core.ExStretch, error) {
	sch, err := s.BuildWith(ExStretch, cfg)
	if err != nil {
		return nil, err
	}
	return sch.(*core.ExStretch), nil
}

func (s *System) buildPoly(cfg BuildConfig) (*core.PolynomialStretch, error) {
	sch, err := s.BuildWith(Polynomial, cfg)
	if err != nil {
		return nil, err
	}
	return sch.(*core.PolynomialStretch), nil
}

// BuildStretchSixViaSource builds the §2.2 variant that fetches the
// destination's address back to the source before routing (same worst
// case, longer paths in practice).
//
// Deprecated: use Build(StretchSix, WithSeed(seed), WithViaSource()).
func (s *System) BuildStretchSixViaSource(seed int64) (*core.StretchSix, error) {
	return s.buildS6(BuildConfig{Seed: seed, ViaSource: true})
}

// BuildExStretch builds the §3 scheme with tradeoff parameter k >= 2.
//
// Deprecated: use Build(ExStretch, WithK(k), WithSeed(seed)).
func (s *System) BuildExStretch(k int, seed int64) (*core.ExStretch, error) {
	return s.buildEx(BuildConfig{Seed: seed, K: k})
}

// BuildExStretchDirectReturn builds the §3.5 variant that carries the
// source's globally valid label and returns without retracing waypoints
// (longer headers, bigger tables).
//
// Deprecated: use Build(ExStretch, WithK(k), WithSeed(seed),
// WithDirectReturn()).
func (s *System) BuildExStretchDirectReturn(k int, seed int64) (*core.ExStretch, error) {
	return s.buildEx(BuildConfig{Seed: seed, K: k, DirectReturn: true})
}

// Full configuration aliases for callers needing every knob (block
// assignment density, cover variants, build parallelism, return-trip
// policies).
type (
	// Stretch6Options configures BuildStretchSixWith.
	Stretch6Options = core.Stretch6Config
	// ExStretchOptions configures BuildExStretchWith.
	ExStretchOptions = core.ExStretchConfig
	// PolyOptions configures BuildPolynomialWith.
	PolyOptions = core.PolyConfig
	// BlockOptions configures the Lemma 1/4 dictionary assignment.
	BlockOptions = blocks.Config
)

// BuildStretchSixWith builds the §2 scheme with explicit options.
//
// Deprecated: use Build(StretchSix, ...) or BuildWith(StretchSix, cfg).
func (s *System) BuildStretchSixWith(seed int64, opts Stretch6Options) (*core.StretchSix, error) {
	return s.buildS6(BuildConfig{
		Seed: seed, Blocks: opts.Blocks, Substrate: opts.Substrate,
		ViaSource: opts.ViaSource, BuildWorkers: opts.BuildWorkers,
	})
}

// BuildExStretchWith builds the §3 scheme with explicit options.
//
// Deprecated: use Build(ExStretch, ...) or BuildWith(ExStretch, cfg).
func (s *System) BuildExStretchWith(seed int64, opts ExStretchOptions) (*core.ExStretch, error) {
	return s.buildEx(BuildConfig{
		Seed: seed, K: opts.K, CoverK: opts.CoverK, ScaleBase: opts.ScaleBase,
		Variant: opts.Variant, Blocks: opts.Blocks,
		DirectReturn: opts.DirectReturn, BuildWorkers: opts.BuildWorkers,
	})
}

// BuildPolynomialWith builds the §4 scheme with explicit options.
//
// Deprecated: use Build(Polynomial, ...) or BuildWith(Polynomial, cfg).
func (s *System) BuildPolynomialWith(opts PolyOptions) (*core.PolynomialStretch, error) {
	return s.buildPoly(BuildConfig{
		K: opts.K, ScaleBase: opts.ScaleBase, Variant: opts.Variant,
		BuildWorkers: opts.BuildWorkers,
	})
}

// BuildPolynomial builds the §4 scheme with tradeoff parameter k >= 2.
//
// Deprecated: use Build(Polynomial, WithK(k)).
func (s *System) BuildPolynomial(k int) (*core.PolynomialStretch, error) {
	return s.buildPoly(BuildConfig{K: k})
}

// BuildPolynomialVariant builds the §4 scheme with an explicit cover
// variant and scale base (the §4.4 ablation knobs).
//
// Deprecated: use Build(Polynomial, WithK(k), WithScaleBase(base),
// WithCoverVariant(v)).
func (s *System) BuildPolynomialVariant(k int, base float64, v CoverVariant) (*core.PolynomialStretch, error) {
	return s.buildPoly(BuildConfig{K: k, ScaleBase: base, Variant: v})
}

// Experiment harness re-exports (see DESIGN.md's experiment index).
type (
	// Fig1Row is one measured row of the paper's comparison table.
	Fig1Row = eval.Row
	// Fig1Config parameterizes Fig-1 regeneration.
	Fig1Config = eval.Fig1Config
	// StretchStats aggregates measured stretch over a pair set.
	StretchStats = eval.StretchStats
	// LowerBoundReport is one pair's Theorem 15 reduction record.
	LowerBoundReport = lowerbound.PairReport
)

// Fig1 regenerates the paper's comparison table empirically.
func Fig1(cfg Fig1Config) ([]Fig1Row, error) { return eval.Fig1(cfg) }

// FormatFig1 renders Fig-1 rows as an aligned text table.
func FormatFig1(rows []Fig1Row) string { return eval.FormatRows(rows) }

// EncodedSpacePoint is one sample of the encoded-bytes space report.
type EncodedSpacePoint = eval.EncodedSpacePoint

// EncodedSpaceConfig tunes EncodedSpaceSweep.
type EncodedSpaceConfig = eval.EncodedSpaceConfig

// EncodedSpaceSweep measures per-node routing state in wire bytes across
// graph sizes — the empirical Theorem 6 space certification (E14).
func EncodedSpaceSweep(cfg EncodedSpaceConfig) ([]EncodedSpacePoint, error) {
	return eval.EncodedSpaceSweep(cfg)
}

// EncodedSpaceSlope fits the log-log growth exponent of a sweep.
func EncodedSpaceSlope(pts []EncodedSpacePoint) float64 { return eval.EncodedSpaceSlope(pts) }

// FormatEncodedSpace renders an encoded space sweep as text.
func FormatEncodedSpace(pts []EncodedSpacePoint) string { return eval.FormatEncodedSpace(pts) }

// SpaceSweep measures stretch-6 table sizes across graph sizes (E9).
func SpaceSweep(ns []int, seed int64) ([]eval.SpacePoint, error) { return eval.SpaceSweep(ns, seed) }

// FormatSpaceSweep renders a space sweep as text.
func FormatSpaceSweep(pts []eval.SpacePoint) string { return eval.FormatSpacePoints(pts) }

// MeasureScheme measures a scheme's roundtrip stretch over sampled pairs.
// It drives the pairs through the scheme's forwarding plane with one
// reused header (the traffic engine's allocation discipline); routes and
// statistics are identical to per-pair Roundtrip traces.
func MeasureScheme(sys *System, sch Scheme, pairLimit int, seed int64) (StretchStats, error) {
	rng := rand.New(rand.NewSource(seed))
	pairs := eval.Pairs(sys.Graph.N(), pairLimit, rng)
	return eval.MeasureFlights(sys.Metric, sys.Naming, sch, pairs)
}

// ProfileBucket is one distance quantile of a stretch profile.
type ProfileBucket = eval.ProfileBucket

// ProfileScheme buckets a scheme's measured stretch by roundtrip
// distance quantile — near vs. far destinations.
func ProfileScheme(sys *System, sch Scheme, pairLimit, buckets int, seed int64) ([]ProfileBucket, error) {
	rng := rand.New(rand.NewSource(seed))
	pairs := eval.Pairs(sys.Graph.N(), pairLimit, rng)
	return eval.ProfileByDistance(sys.Metric, sys.Naming, sch.Roundtrip, pairs, buckets)
}

// FormatProfile renders a stretch profile as text.
func FormatProfile(buckets []ProfileBucket) string { return eval.FormatProfile(buckets) }

// Traffic engine re-exports (experiment E12 / scaling study S3): compile
// a built scheme into a frozen concurrent forwarding plane and drive
// skewed workloads through it from sharded workers.
type (
	// ForwardingPlane is the compiled read-only forwarding contract
	// (sim.Plane) shared by the sequential tracer and the traffic
	// engine. Every built Scheme is a ForwardingPlane.
	ForwardingPlane = sim.Plane
	// TrafficConfig parameterizes one engine run.
	TrafficConfig = traffic.Config
	// TrafficResult aggregates one engine run's serving stats.
	TrafficResult = traffic.Result
	// TrafficWorkload selects and tunes the generated pair distribution.
	TrafficWorkload = traffic.Spec
	// WorkloadKind names a workload pair distribution.
	WorkloadKind = traffic.Kind
)

// Workload kinds for TrafficWorkload.Kind.
const (
	WorkloadUniform = traffic.Uniform
	WorkloadZipf    = traffic.Zipf
	WorkloadHotspot = traffic.Hotspot
	WorkloadRPC     = traffic.RPC
)

// ServeTraffic compiles the plane (sealing the graph index, certifying
// it with a probe roundtrip) and serves cfg.Packets roundtrips through
// it across cfg.Workers goroutines. When cfg.Oracle is nil, the system's
// own distance oracle supplies the stretch accounting.
func (s *System) ServeTraffic(plane ForwardingPlane, cfg TrafficConfig) (*TrafficResult, error) {
	pl, err := traffic.Compile(plane)
	if err != nil {
		return nil, err
	}
	if cfg.Oracle == nil {
		cfg.Oracle = s.Metric
	}
	return traffic.Run(pl, cfg)
}

// BuildRTZPlane builds the name-dependent RTZ stretch-3 substrate and
// wraps it as a servable forwarding plane — the [35] baseline for the
// E12 serving experiments.
//
// Deprecated: use Build(RTZStretch3, WithSeed(seed)).
func (s *System) BuildRTZPlane(seed int64) (ForwardingPlane, error) {
	return s.Build(RTZStretch3, WithSeed(seed))
}

// BuildHopPlane builds the Lemma 5 double-tree-cover substrate with
// cover parameter k >= 2 and wraps it as a servable forwarding plane.
//
// Deprecated: use Build(HopSubstrate, WithK(k)).
func (s *System) BuildHopPlane(k int) (ForwardingPlane, error) {
	return s.Build(HopSubstrate, WithK(k))
}

// FormatTraffic renders a traffic result as the E12 serving report.
func FormatTraffic(r *TrafficResult) string { return r.Format() }

// AnalyzeLowerBound runs the Theorem 15 reduction of a scheme over a
// bidirected graph (E8).
func AnalyzeLowerBound(sys *System, sch Scheme) ([]LowerBoundReport, error) {
	return lowerbound.Analyze(sys.Graph, sys.Metric, sch, func(v NodeID) int32 {
		return sys.Naming.Name(int32(v))
	})
}

// SummarizeLowerBound folds reduction reports into aggregates.
func SummarizeLowerBound(reports []LowerBoundReport) lowerbound.Summary {
	return lowerbound.Summarize(reports)
}
